// Package energy converts DRAM command counts into energy, loosely after
// the Micron 8Gb DDR4 current profile the paper uses (Tab. III), at
// rank granularity (16 x4 chips). It reproduces the decomposition of
// Fig. 16b — background, activation, read/write, refresh — including the
// EWLR saving: an EWLR-hit activation skips re-driving the main wordline
// and saves 18% of the Vpp power of the activation (Sec. IV).
package energy

import "eruca/internal/dram"

// Model holds per-event energies (nJ) and background power (mW) for one
// rank.
type Model struct {
	// ActPreNJ is the energy of one activate/precharge pair.
	ActPreNJ float64
	// VppFracOfAct is the share of ActPreNJ drawn from the Vpp wordline
	// supply.
	VppFracOfAct float64
	// EWLRSaveFrac is the fraction of Vpp energy an EWLR hit saves
	// (the paper reports 18%, from the Rambus model for a 2Gb device).
	EWLRSaveFrac float64
	// ReadNJ / WriteNJ are per-burst column energies including I/O.
	ReadNJ, WriteNJ float64
	// RefreshNJ is per REF command.
	RefreshNJ float64
	// ActiveStandbyMW / PrechargeStandbyMW are rank background powers
	// with at least one open row vs. all banks precharged.
	ActiveStandbyMW, PrechargeStandbyMW float64
}

// Default returns the rank-level model (16 x 8Gb x4 DDR4 chips, derived
// from IDD0/IDD2N/IDD3N/IDD4R/IDD4W/IDD5-style figures at 1.2V).
func Default() Model {
	return Model{
		ActPreNJ:           13.0,
		VppFracOfAct:       0.35,
		EWLRSaveFrac:       0.18,
		ReadNJ:             9.0,
		WriteNJ:            9.5,
		RefreshNJ:          500.0,
		ActiveStandbyMW:    770,
		PrechargeStandbyMW: 615,
	}
}

// Breakdown is the Fig. 16b decomposition, in nanojoules.
type Breakdown struct {
	BackgroundNJ float64
	ActNJ        float64
	RdWrNJ       float64
	RefreshNJ    float64
}

// TotalNJ sums the components.
func (b Breakdown) TotalNJ() float64 {
	return b.BackgroundNJ + b.ActNJ + b.RdWrNJ + b.RefreshNJ
}

// Compute derives the energy breakdown from DRAM statistics and the
// elapsed wall-clock time of the run. busNSPerCycle converts the
// cycle-integrated background counters to time.
func (m Model) Compute(st dram.Stats, busNSPerCycle float64) Breakdown {
	activeNS := float64(st.ActiveCycles) * busNSPerCycle
	idleNS := float64(st.AllCycles-st.ActiveCycles) * busNSPerCycle
	// mW * ns = pJ; /1000 -> nJ.
	bg := (activeNS*m.ActiveStandbyMW + idleNS*m.PrechargeStandbyMW) / 1000

	hit := float64(st.ActsEWLRHit)
	full := float64(st.Acts) - hit
	perHit := m.ActPreNJ * (1 - m.VppFracOfAct*m.EWLRSaveFrac)
	act := full*m.ActPreNJ + hit*perHit

	rdwr := float64(st.Reads)*m.ReadNJ + float64(st.Writes)*m.WriteNJ
	ref := float64(st.Refreshes) * m.RefreshNJ
	return Breakdown{BackgroundNJ: bg, ActNJ: act, RdWrNJ: rdwr, RefreshNJ: ref}
}

// Package retry is the one implementation of client-side resilience the
// repo's HTTP callers share: exponential backoff with jitter that honors
// a server's Retry-After hint as the floor, and a per-peer circuit
// breaker that stops hammering a dead endpoint so callers can shed work
// to an alternative instead of queueing behind timeouts.
//
// The package was extracted from examples/serve (which had grown two
// private copies of the backoff dance) so the example client and the
// cluster's inter-node calls retry the same way and are tested once.
package retry

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Backoff is exponential backoff with jitter. The zero value is usable:
// it starts at DefaultBase, doubles per step, caps at DefaultMax, and
// jitters each sleep by ±25%. A Backoff is single-goroutine state —
// give each retry loop its own.
type Backoff struct {
	// Base is the first delay (default 250ms).
	Base time.Duration
	// Max caps the exponential growth (default 30s).
	Max time.Duration
	// Jitter is the ± fraction applied to every delay (default 0.25).
	// Jitter keeps a herd of rejected clients from retrying in
	// lockstep — the daemon's 429 hints carry jitter for the same
	// reason, and the two compose.
	Jitter float64
	// Rand supplies the jitter draws (default math/rand global). Tests
	// inject a seeded source for determinism.
	Rand *rand.Rand

	cur time.Duration
}

// DefaultBase, DefaultMax are the zero-value Backoff parameters.
const (
	DefaultBase = 250 * time.Millisecond
	DefaultMax  = 30 * time.Second
)

func (b *Backoff) defaults() (base, limit time.Duration, jitter float64) {
	base, limit, jitter = b.Base, b.Max, b.Jitter
	if base <= 0 {
		base = DefaultBase
	}
	if limit <= 0 {
		limit = DefaultMax
	}
	if jitter <= 0 {
		jitter = 0.25
	}
	return base, limit, jitter
}

func (b *Backoff) float64() float64 {
	if b.Rand != nil {
		return b.Rand.Float64()
	}
	return rand.Float64()
}

// Next returns the jittered delay to sleep before the next attempt and
// advances the exponential schedule. hint is the server's Retry-After
// (zero when none); it floors the un-jittered delay, so a client never
// retries sooner than the server asked while still keeping its own
// growth for repeated rejections.
func (b *Backoff) Next(hint time.Duration) time.Duration {
	base, limit, jitter := b.defaults()
	if b.cur <= 0 {
		b.cur = base
	}
	d := b.cur
	if hint > d {
		d = hint
	}
	jittered := time.Duration(float64(d) * (1 - jitter + 2*jitter*b.float64()))
	if b.cur *= 2; b.cur > limit {
		b.cur = limit
	}
	return jittered
}

// Sleep blocks for Next(hint), or returns early with ctx.Err() when the
// context ends first.
func (b *Backoff) Sleep(ctx context.Context, hint time.Duration) error {
	t := time.NewTimer(b.Next(hint))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Reset returns the schedule to Base — call after a success so the next
// failure starts cheap again.
func (b *Backoff) Reset() { b.cur = 0 }

// Breaker is a per-peer circuit breaker: Threshold consecutive failures
// open the circuit, Allow then answers false (callers shed to another
// peer) until Cooldown has passed, at which point exactly one probe is
// let through (half-open). A probe success closes the circuit; a probe
// failure re-opens it for another Cooldown.
//
// The breaker exists because a dead cluster member otherwise costs
// every forwarded request a full connect timeout; with the circuit
// open, the forwarder skips straight to the next ring member.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the
	// circuit (default 3).
	Threshold int
	// Cooldown is how long the circuit stays open before the
	// half-open probe (default 5s).
	Cooldown time.Duration
	// now is injectable for tests.
	now func() time.Time

	mu       sync.Mutex
	failures int
	openedAt time.Time
	open     bool
	probing  bool
}

func (b *Breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

func (b *Breaker) threshold() int {
	if b.Threshold > 0 {
		return b.Threshold
	}
	return 3
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown > 0 {
		return b.Cooldown
	}
	return 5 * time.Second
}

// Allow reports whether a call may proceed. While open it returns false
// until Cooldown elapses, then lets exactly one caller probe.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if b.clock().Sub(b.openedAt) < b.cooldown() || b.probing {
		return false
	}
	b.probing = true // half-open: this caller is the probe
	return true
}

// Success records a successful call, closing the circuit.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.failures, b.open, b.probing = 0, false, false
	b.mu.Unlock()
}

// Failure records a failed call; at Threshold consecutive failures the
// circuit opens (and a failed half-open probe re-opens it immediately).
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	if b.probing || b.failures >= b.threshold() {
		b.open = true
		b.probing = false
		b.openedAt = b.clock()
	}
}

// Open reports whether the circuit is currently open (for metrics).
func (b *Breaker) Open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open && b.clock().Sub(b.openedAt) < b.cooldown()
}

// Breakers is a keyed set of circuit breakers, one per peer address,
// created on first use with the set's Threshold/Cooldown.
type Breakers struct {
	// Threshold, Cooldown configure newly created breakers.
	Threshold int
	Cooldown  time.Duration

	mu sync.Mutex
	m  map[string]*Breaker
}

// For returns (creating if needed) the breaker for key.
func (s *Breakers) For(key string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[string]*Breaker)
	}
	b := s.m[key]
	if b == nil {
		b = &Breaker{Threshold: s.Threshold, Cooldown: s.Cooldown}
		s.m[key] = b
	}
	return b
}

// OpenCount reports how many breakers are currently open (for metrics).
func (s *Breakers) OpenCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, b := range s.m {
		if b.Open() {
			n++
		}
	}
	return n
}

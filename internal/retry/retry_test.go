package retry

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

// TestBackoffGrowth: the un-jittered schedule doubles from Base and
// caps at Max; with a zero-jitter impossible (jitter defaults on), we
// bound each sample inside the jitter envelope instead.
func TestBackoffGrowth(t *testing.T) {
	b := &Backoff{Base: 100 * time.Millisecond, Max: 800 * time.Millisecond,
		Jitter: 0.25, Rand: rand.New(rand.NewSource(1))}
	want := []time.Duration{100, 200, 400, 800, 800, 800} // ms, pre-jitter
	for i, w := range want {
		got := b.Next(0)
		lo := time.Duration(float64(w*time.Millisecond) * 0.75)
		hi := time.Duration(float64(w*time.Millisecond) * 1.25)
		if got < lo || got > hi {
			t.Fatalf("step %d: %v outside [%v,%v]", i, got, lo, hi)
		}
	}
}

// TestBackoffHintFloors: a Retry-After hint larger than the current
// step floors the delay; a smaller hint leaves the schedule alone.
func TestBackoffHintFloors(t *testing.T) {
	b := &Backoff{Base: 100 * time.Millisecond, Max: time.Minute,
		Jitter: 0.25, Rand: rand.New(rand.NewSource(2))}
	got := b.Next(2 * time.Second)
	if got < 1500*time.Millisecond || got > 2500*time.Millisecond {
		t.Fatalf("hinted delay %v outside jittered [1.5s,2.5s]", got)
	}
	// Schedule still advanced from 100ms -> 200ms, not from the hint.
	got = b.Next(0)
	if got > 250*time.Millisecond {
		t.Fatalf("post-hint delay %v; hint should not inflate the schedule", got)
	}
}

func TestBackoffReset(t *testing.T) {
	b := &Backoff{Base: 100 * time.Millisecond, Max: time.Minute,
		Jitter: 0.25, Rand: rand.New(rand.NewSource(3))}
	b.Next(0)
	b.Next(0)
	b.Reset()
	if got := b.Next(0); got > 125*time.Millisecond {
		t.Fatalf("after Reset, first delay %v > jittered Base", got)
	}
}

func TestBackoffZeroValueDefaults(t *testing.T) {
	var b Backoff
	b.Rand = rand.New(rand.NewSource(4))
	got := b.Next(0)
	lo := time.Duration(float64(DefaultBase) * 0.75)
	hi := time.Duration(float64(DefaultBase) * 1.25)
	if got < lo || got > hi {
		t.Fatalf("zero-value first delay %v outside [%v,%v]", got, lo, hi)
	}
}

func TestSleepHonorsContext(t *testing.T) {
	b := &Backoff{Base: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := b.Sleep(ctx, 0); err == nil {
		t.Fatal("Sleep returned nil on a canceled context")
	}
	if time.Since(start) > time.Second {
		t.Fatal("Sleep did not return promptly on cancellation")
	}
}

// TestBreakerLifecycle walks the state machine: closed -> open at
// Threshold consecutive failures -> half-open probe after Cooldown ->
// closed on probe success (and re-open on probe failure).
func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	b := &Breaker{Threshold: 3, Cooldown: 5 * time.Second, now: func() time.Time { return now }}

	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker denied call %d", i)
		}
		b.Failure()
	}
	if !b.Allow() {
		t.Fatal("breaker opened before Threshold")
	}
	b.Failure() // third consecutive failure: opens
	if b.Allow() {
		t.Fatal("open breaker allowed a call")
	}
	if !b.Open() {
		t.Fatal("Open() false while open")
	}

	now = now.Add(6 * time.Second) // past cooldown: half-open
	if !b.Allow() {
		t.Fatal("half-open breaker denied the probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker allowed a second concurrent probe")
	}
	b.Failure() // probe failed: re-open immediately
	if b.Allow() {
		t.Fatal("breaker allowed a call right after a failed probe")
	}

	now = now.Add(6 * time.Second)
	if !b.Allow() {
		t.Fatal("second probe denied")
	}
	b.Success()
	if !b.Allow() || b.Open() {
		t.Fatal("breaker did not close after a successful probe")
	}
}

// TestBreakerSuccessResetsCount: non-consecutive failures never open.
func TestBreakerSuccessResetsCount(t *testing.T) {
	b := &Breaker{Threshold: 2}
	b.Failure()
	b.Success()
	b.Failure()
	if !b.Allow() {
		t.Fatal("breaker opened on non-consecutive failures")
	}
}

func TestBreakersKeyedSet(t *testing.T) {
	var s Breakers
	s.Threshold = 1
	a, b2 := s.For("a"), s.For("b")
	if a == b2 {
		t.Fatal("distinct keys share a breaker")
	}
	if s.For("a") != a {
		t.Fatal("same key returned a different breaker")
	}
	a.Failure()
	if s.OpenCount() != 1 {
		t.Fatalf("OpenCount = %d, want 1", s.OpenCount())
	}
	if !b2.Allow() {
		t.Fatal("peer b's breaker affected by peer a's failures")
	}
}

package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Structured logging constructors shared by every binary: -log-format
// selects the handler, -log-level the floor. Loggers carry job_id /
// trace_id / node / epoch attributes at the call sites, so one grep by
// trace_id reconstructs a request across all cluster members' logs.

// ParseLevel maps a -log-level flag value to a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds a slog logger writing to w. format is "text" or
// "json"; level one of debug|info|warn|error (empty = info).
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text|json)", format)
}

// Discard returns a logger that drops everything — the default for
// library layers when no logger is configured.
func Discard() *slog.Logger {
	// A level far above Error disables every record before formatting.
	// (slog.DiscardHandler needs a newer stdlib than the module's floor.)
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{
		Level: slog.Level(127),
	}))
}

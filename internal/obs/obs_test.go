package obs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanContextTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer("n1", 16)
	sp := tr.Start(SpanContext{}, KindAdmit, "admit")
	sc := sp.Context()
	if !sc.Valid() {
		t.Fatalf("started span has invalid context: %+v", sc)
	}
	tp := sc.Traceparent()
	if len(tp) != 55 || !strings.HasPrefix(tp, "00-") {
		t.Fatalf("traceparent %q malformed", tp)
	}
	back := ParseTraceparent(tp)
	if back != sc {
		t.Fatalf("round trip: got %+v want %+v", back, sc)
	}
	sp.End()
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-short-16161616161616-01",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-0",  // short flags
		"00-0af7651916cd43dd8448eb211c80319c_b7ad6b7169203331-01", // wrong sep
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // forbidden version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span
		"00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01", // uppercase hex
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra",
	}
	for _, s := range bad {
		if sc := ParseTraceparent(s); sc.Valid() {
			t.Errorf("ParseTraceparent(%q) accepted: %+v", s, sc)
		}
	}
	good := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if sc := ParseTraceparent(good); !sc.Valid() {
		t.Errorf("ParseTraceparent(%q) rejected", good)
	}
}

func TestInjectExtract(t *testing.T) {
	h := http.Header{}
	sc := SpanContext{Trace: "0af7651916cd43dd8448eb211c80319c", Span: "b7ad6b7169203331"}
	Inject(h, sc)
	if got := Extract(h); got != sc {
		t.Fatalf("extract: got %+v want %+v", got, sc)
	}
	// Invalid contexts must not set the header.
	h2 := http.Header{}
	Inject(h2, SpanContext{})
	if v := h2.Get(Header); v != "" {
		t.Fatalf("invalid inject set header %q", v)
	}
}

func TestContextCarry(t *testing.T) {
	sc := SpanContext{Trace: "0af7651916cd43dd8448eb211c80319c", Span: "b7ad6b7169203331"}
	ctx := ContextWith(context.Background(), sc)
	if got := FromContext(ctx); got != sc {
		t.Fatalf("FromContext: got %+v want %+v", got, sc)
	}
	base := context.Background()
	if ContextWith(base, SpanContext{}) != base {
		t.Fatal("invalid ContextWith must return ctx unchanged")
	}
	if FromContext(base).Valid() {
		t.Fatal("empty context must yield invalid span context")
	}
}

func TestParentage(t *testing.T) {
	tr := NewTracer("n1", 16)
	root := tr.Start(SpanContext{}, KindForward, "forward")
	child := tr.Start(root.Context(), KindAdmit, "admit")
	child.SetJob("job-000001")
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Ring is end-order: child ended first.
	c, r := spans[0], spans[1]
	if c.Trace != r.Trace {
		t.Fatalf("trace ids differ: %s vs %s", c.Trace, r.Trace)
	}
	if c.Parent != r.ID {
		t.Fatalf("child parent %s, want root id %s", c.Parent, r.ID)
	}
	if r.Parent != "" {
		t.Fatalf("root has parent %s", r.Parent)
	}
	if c.Job != "job-000001" {
		t.Fatalf("child job %q", c.Job)
	}
	if got := tr.Trace(c.Trace); len(got) != 2 {
		t.Fatalf("Trace(%s) returned %d spans", c.Trace, len(got))
	}
}

func TestRingBounded(t *testing.T) {
	tr := NewTracer("n1", 8)
	for i := 0; i < 20; i++ {
		sp := tr.Start(SpanContext{}, KindRun, fmt.Sprintf("run %d", i))
		sp.End()
	}
	spans := tr.Spans()
	if len(spans) != 8 {
		t.Fatalf("ring holds %d spans, want 8", len(spans))
	}
	// Oldest-first: the survivors are runs 12..19.
	if spans[0].Name != "run 12" || spans[7].Name != "run 19" {
		t.Fatalf("ring order wrong: first %q last %q", spans[0].Name, spans[7].Name)
	}
	if tr.Total() != 20 {
		t.Fatalf("total %d, want 20", tr.Total())
	}
}

func TestObserverSeesSpans(t *testing.T) {
	tr := NewTracer("n1", 8)
	var mu sync.Mutex
	var got []Span
	tr.Observe(func(sp Span) {
		mu.Lock()
		got = append(got, sp)
		mu.Unlock()
	})
	sp := tr.Start(SpanContext{}, KindQueueWait, "queue")
	sp.SetError(errors.New("boom"))
	sp.End()
	sp.End() // double End must not re-record
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("observer saw %d spans, want 1", len(got))
	}
	if got[0].Err != "boom" {
		t.Fatalf("observer span err %q", got[0].Err)
	}
}

// TestSpanRingConcurrentWriters is the -race coverage for the span ring:
// many goroutines start/annotate/end spans while readers snapshot.
func TestSpanRingConcurrentWriters(t *testing.T) {
	tr := NewTracer("n1", 64)
	tr.Observe(func(Span) {})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.Start(SpanContext{}, KindRun, "run")
				sp.SetJob("job")
				sp.SetAttr("g", "x")
				child := tr.Start(sp.Context(), KindCacheLookup, "probe")
				child.End()
				sp.End()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = tr.Spans()
				_ = tr.Total()
			}
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Writers finish; then release the reader.
	for i := 0; i < 8*200; {
		time.Sleep(time.Millisecond)
		if tr.Total() >= uint64(8*200*2) {
			break
		}
		i++
	}
	close(stop)
	<-done
	if got := tr.Total(); got != 8*200*2 {
		t.Fatalf("total %d, want %d", got, 8*200*2)
	}
}

// TestDisabledTracerZeroAlloc proves the nil-tracer path allocates
// nothing: the exact guarantee the bench-guard CI step enforces for the
// job hot path.
func TestDisabledTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	ctx := context.Background()
	h := http.Header{}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start(SpanContext{}, KindRun, "run")
		sp.SetJob("job-000001")
		sp.SetAttr("k", "v")
		sp.SetError(nil)
		child := tr.Start(sp.Context(), KindCacheLookup, "probe")
		child.End()
		sp.End()
		if ContextWith(ctx, sp.Context()) != ctx {
			t.Fatal("disabled ContextWith must be identity")
		}
		Inject(h, sp.Context())
		_ = tr.Spans()
		_ = tr.Node()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer path allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkDisabledSpan is the alloc gate CI runs with -benchmem: the
// reported allocs/op must be 0.
func BenchmarkDisabledSpan(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(SpanContext{}, KindRun, "run")
		sp.SetJob("job-000001")
		sp.End()
	}
}

func TestPerfettoSpanExport(t *testing.T) {
	at := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	spans := []Span{
		{
			Trace: "0af7651916cd43dd8448eb211c80319c", ID: "b7ad6b7169203331",
			Kind: KindForward, Name: "forward", Node: "coord",
			Start: at, End: at.Add(2 * time.Millisecond),
		},
		{
			Trace: "0af7651916cd43dd8448eb211c80319c", ID: "00f067aa0ba902b7",
			Parent: "b7ad6b7169203331", Kind: KindAdmit, Name: "admit",
			Node: "w1", Job: "w1-job-000001",
			Start: at.Add(time.Millisecond), End: at.Add(3 * time.Millisecond),
			Attrs: map[string]string{"replayed": "false"},
		},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"traceEvents"`,
		`"name":"node coord"`,
		`"name":"node w1"`,
		`"ph":"X"`,
		`"trace_id":"0af7651916cd43dd8448eb211c80319c"`,
		`"parent_id":"b7ad6b7169203331"`,
		`"job_id":"w1-job-000001"`,
		`"replayed":"false"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %s\n%s", want, out)
		}
	}
	// Deterministic: same input, same bytes.
	var buf2 bytes.Buffer
	if err := WriteTrace(&buf2, spans); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("span export is not deterministic")
	}
}

func TestLoggerConstructors(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "json", "warn")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("dropped")
	lg.Warn("kept", "job_id", "job-000001")
	out := buf.String()
	if strings.Contains(out, "dropped") {
		t.Errorf("info leaked past warn level: %s", out)
	}
	if !strings.Contains(out, `"job_id":"job-000001"`) {
		t.Errorf("json attrs missing: %s", out)
	}
	if _, err := NewLogger(&buf, "xml", "info"); err == nil {
		t.Error("bad format accepted")
	}
	if _, err := NewLogger(&buf, "text", "loud"); err == nil {
		t.Error("bad level accepted")
	}
	Discard().Error("nothing happens")
}

package obs

import (
	"io"
	"sort"
	"strings"

	"eruca/internal/telemetry"
)

// Perfetto export of service spans, reusing the telemetry trace-event
// emitter so simulator events and service spans can share one document:
// WriteTrace dumps spans alone, WriteMergedTrace appends a job's sim
// telemetry events after the spans, and the result opens in
// ui.perfetto.dev as one timeline.
//
// Layout: one trace-event "process" per node (pids from nodePID, well
// above the sim exporter's run-indexed pids), one "thread" per span
// kind. Spans render as complete events ("X") with microsecond
// timestamps relative to the earliest span start, so output is
// deterministic for a fixed span slice.

// nodePID offsets span process ids away from sim run indices.
const nodePID = 1000

// WriteTrace renders spans as a standalone Chrome trace-event document.
func WriteTrace(w io.Writer, spans []Span) error {
	em := telemetry.NewEmitter(w)
	EmitSpans(em, spans)
	return em.Close()
}

// WriteMergedTrace renders spans plus simulator telemetry events in one
// document — the ?perfetto=1 job-trace export.
func WriteMergedTrace(w io.Writer, spans []Span, events []telemetry.Event, runs []string) error {
	em := telemetry.NewEmitter(w)
	EmitSpans(em, spans)
	telemetry.EmitEvents(em, events, runs)
	return em.Close()
}

// spanKindOrder fixes thread ids (and so track order) for the typed
// span vocabulary; unknown kinds land after, in first-appearance order.
var spanKindOrder = []Kind{
	KindForward, KindProxy, KindAdmit, KindQueueWait, KindSchedule,
	KindCacheLookup, KindRun, KindCheckpointSave, KindCheckpointReplicate,
	KindWALAppend, KindMigrate, KindEvalFanout,
}

// EmitSpans renders spans into an already-open emitter.
func EmitSpans(em *telemetry.Emitter, spans []Span) {
	if len(spans) == 0 {
		return
	}
	base := spans[0].Start
	for _, sp := range spans {
		if sp.Start.Before(base) {
			base = sp.Start
		}
	}

	kindTID := map[Kind]int{}
	for i, k := range spanKindOrder {
		kindTID[k] = i
	}
	pids := map[string]int{}
	pid := func(node string) int {
		if p, ok := pids[node]; ok {
			return p
		}
		p := nodePID + len(pids)
		pids[node] = p
		name := node
		if name == "" {
			name = "erucad"
		}
		em.Emit(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":"node %s"}}`, p, name)
		return p
	}
	seenThread := map[[2]int]bool{}
	tid := func(p int, k Kind) int {
		t, ok := kindTID[k]
		if !ok {
			t = len(kindTID)
			kindTID[k] = t
		}
		key := [2]int{p, t}
		if !seenThread[key] {
			seenThread[key] = true
			em.Emit(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"%s"}}`, p, t, string(k))
		}
		return t
	}

	for _, sp := range spans {
		p := pid(sp.Node)
		t := tid(p, sp.Kind)
		ts := sp.Start.Sub(base).Microseconds()
		dur := sp.Duration().Microseconds()
		if dur < 1 {
			dur = 1
		}
		em.Emit(`{"ph":"X","cat":"span","pid":%d,"tid":%d,"ts":%d,"dur":%d,"name":%q,"args":{%s}}`,
			p, t, ts, dur, sp.Name, spanArgs(sp))
	}
}

// spanArgs renders the span identity and annotations as trace-event
// args fields (deterministic: attrs in sorted key order).
func spanArgs(sp Span) string {
	var b strings.Builder
	field := func(k, v string) {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(quote(k))
		b.WriteByte(':')
		b.WriteString(quote(v))
	}
	field("trace_id", sp.Trace)
	field("span_id", sp.ID)
	if sp.Parent != "" {
		field("parent_id", sp.Parent)
	}
	if sp.Job != "" {
		field("job_id", sp.Job)
	}
	if sp.Err != "" {
		field("error", sp.Err)
	}
	keys := make([]string, 0, len(sp.Attrs))
	for k := range sp.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		field(k, sp.Attrs[k])
	}
	return b.String()
}

// quote JSON-escapes s minimally (the values here are ids, job names and
// error strings; control characters are dropped).
func quote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case c < 0x20:
			// control characters have no business in span fields
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// Package obs is the service-layer observability spine: request-scoped
// distributed tracing (W3C traceparent propagation over the peer HTTP
// protocol) plus structured slog-based logging shared by every binary.
//
// The tracer is deliberately nil-friendly: a nil *Tracer hands out nil
// *ActiveSpan values, and every method on both is a no-op that performs
// zero allocations. Callers thread spans through hot paths
// unconditionally and the disabled daemon pays nothing — proven by an
// allocation test, and gated in CI.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Kind is the typed span vocabulary. Every span the service emits is one
// of these, so dashboards and tests can switch on structure instead of
// parsing names.
type Kind string

const (
	// KindAdmit covers validation + enqueue of one submission.
	KindAdmit Kind = "admit"
	// KindQueueWait spans enqueue to worker pickup.
	KindQueueWait Kind = "queue_wait"
	// KindSchedule covers the worker's dispatch decision (cache probes,
	// runner selection) between pickup and execution.
	KindSchedule Kind = "schedule"
	// KindRun covers the actual simulation / sweep / search execution.
	KindRun Kind = "run"
	// KindCheckpointSave covers one checkpoint blob save + journal note.
	KindCheckpointSave Kind = "checkpoint_save"
	// KindCheckpointReplicate covers pushing one checkpoint blob to the
	// coordinator.
	KindCheckpointReplicate Kind = "checkpoint_replicate"
	// KindForward covers ring-placement forwarding of a submission to
	// the spec hash's owner node.
	KindForward Kind = "forward"
	// KindProxy covers proxying a job-scoped request to the owner node.
	KindProxy Kind = "proxy"
	// KindMigrate covers re-homing one orphaned job after an eviction.
	KindMigrate Kind = "migrate"
	// KindEvalFanout covers routing one search eval to its ring owner.
	KindEvalFanout Kind = "eval_fanout"
	// KindCacheLookup covers the content-addressed result-cache probes.
	KindCacheLookup Kind = "cache_lookup"
	// KindWALAppend covers one journal append (fsync included).
	KindWALAppend Kind = "wal_append"
)

// SpanContext identifies a position in a trace: the 32-hex trace ID
// shared by every span of one submission, and the 16-hex span ID a child
// names as its parent. The zero value is invalid and means "no trace".
type SpanContext struct {
	Trace string `json:"trace_id"`
	Span  string `json:"span_id"`
}

// Valid reports whether sc names a real position (W3C field widths, not
// all-zero).
func (sc SpanContext) Valid() bool {
	return len(sc.Trace) == 32 && len(sc.Span) == 16 &&
		sc.Trace != zeroTrace && sc.Span != zeroSpan
}

const (
	zeroTrace = "00000000000000000000000000000000"
	zeroSpan  = "0000000000000000"
)

// Span is one finished span as stored in the ring and served by
// GET /v1/traces.
type Span struct {
	Trace  string            `json:"trace_id"`
	ID     string            `json:"span_id"`
	Parent string            `json:"parent_id,omitempty"`
	Kind   Kind              `json:"kind"`
	Name   string            `json:"name"`
	Node   string            `json:"node,omitempty"`
	Job    string            `json:"job_id,omitempty"`
	Start  time.Time         `json:"start"`
	End    time.Time         `json:"end"`
	Err    string            `json:"error,omitempty"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// Duration is the span's wall-clock extent.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Tracer records finished spans into a bounded ring and fans each one
// out to registered observers (the span-derived Prometheus histograms).
// All methods are safe for concurrent use; all methods on a nil Tracer
// are allocation-free no-ops.
type Tracer struct {
	node string

	mu        sync.Mutex
	ring      []Span
	next      int
	total     uint64
	observers []func(Span)
}

// DefaultRing is the span-ring capacity when NewTracer is given <= 0.
const DefaultRing = 4096

// NewTracer builds a tracer for one node. node may be empty on a
// standalone daemon; capacity <= 0 selects DefaultRing.
func NewTracer(node string, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultRing
	}
	return &Tracer{node: node, ring: make([]Span, 0, capacity)}
}

// Node reports the node ID the tracer stamps on its spans.
func (t *Tracer) Node() string {
	if t == nil {
		return ""
	}
	return t.node
}

// Observe registers fn to receive every finished span. Register before
// the tracer is shared across goroutines.
func (t *Tracer) Observe(fn func(Span)) {
	if t == nil || fn == nil {
		return
	}
	t.mu.Lock()
	t.observers = append(t.observers, fn)
	t.mu.Unlock()
}

// Start opens a span. An invalid parent starts a new trace with a fresh
// trace ID; a valid one continues it. On a nil tracer Start returns nil,
// and the nil *ActiveSpan absorbs every subsequent call for free.
func (t *Tracer) Start(parent SpanContext, kind Kind, name string) *ActiveSpan {
	if t == nil {
		return nil
	}
	sp := Span{
		ID:    randHex(8),
		Kind:  kind,
		Name:  name,
		Node:  t.node,
		Start: time.Now(),
	}
	if parent.Valid() {
		sp.Trace, sp.Parent = parent.Trace, parent.Span
	} else {
		sp.Trace = randHex(16)
	}
	return &ActiveSpan{t: t, span: sp}
}

// record appends a finished span to the ring and notifies observers.
func (t *Tracer) record(sp Span) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, sp)
	} else {
		t.ring[t.next] = sp
		t.next = (t.next + 1) % cap(t.ring)
	}
	t.total++
	obs := t.observers
	t.mu.Unlock()
	for _, fn := range obs {
		fn(sp)
	}
}

// Spans returns the ring contents oldest-first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	if len(t.ring) == cap(t.ring) {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Trace returns the ring's spans belonging to one trace, oldest-first.
func (t *Tracer) Trace(traceID string) []Span {
	var out []Span
	for _, sp := range t.Spans() {
		if sp.Trace == traceID {
			out = append(out, sp)
		}
	}
	return out
}

// Total reports how many spans have finished since boot (including any
// the ring has since evicted).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// ActiveSpan is an open span. Nil receivers absorb every call, so
// callers never branch on whether tracing is enabled.
type ActiveSpan struct {
	t *Tracer

	mu    sync.Mutex
	span  Span
	ended bool
}

// Context returns the span's position for parenting children and for
// traceparent injection. Zero (invalid) on a nil span.
func (a *ActiveSpan) Context() SpanContext {
	if a == nil {
		return SpanContext{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return SpanContext{Trace: a.span.Trace, Span: a.span.ID}
}

// SetJob stamps the job ID the span belongs to.
func (a *ActiveSpan) SetJob(id string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.span.Job = id
	a.mu.Unlock()
}

// SetAttr attaches one key/value annotation.
func (a *ActiveSpan) SetAttr(k, v string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if a.span.Attrs == nil {
		a.span.Attrs = make(map[string]string, 4)
	}
	a.span.Attrs[k] = v
	a.mu.Unlock()
}

// SetError records err on the span (nil err clears nothing, no-op).
func (a *ActiveSpan) SetError(err error) {
	if a == nil || err == nil {
		return
	}
	a.mu.Lock()
	a.span.Err = err.Error()
	a.mu.Unlock()
}

// End closes the span and commits it to the tracer ring. Safe to call
// more than once; only the first End records.
func (a *ActiveSpan) End() {
	if a == nil {
		return
	}
	a.mu.Lock()
	if a.ended {
		a.mu.Unlock()
		return
	}
	a.ended = true
	a.span.End = time.Now()
	sp := a.span
	a.mu.Unlock()
	a.t.record(sp)
}

// randHex returns n random bytes as 2n lowercase hex digits.
func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand failing is a broken platform; fall back to a
		// fixed pattern rather than panicking the daemon.
		for i := range b {
			b[i] = byte(0xa5 ^ i)
		}
	}
	return hex.EncodeToString(b)
}

package obs

import (
	"strings"
	"testing"
)

// FuzzTraceparentParse hunts for panics and invariant breaks in the
// W3C traceparent parser, which chews on attacker-controlled header
// bytes on every peer and public request. Invariants: never panic,
// never return a half-valid context, and accept-then-render must
// round-trip to an equal context (00-version canonicalization aside).
func FuzzTraceparentParse(f *testing.F) {
	f.Add("00-aaaabbbbccccddddaaaabbbbccccdddd-1234123412341234-01")
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")
	f.Add("ff-aaaabbbbccccddddaaaabbbbccccdddd-1234123412341234-01")
	f.Add("00-AAAABBBBCCCCDDDDAAAABBBBCCCCDDDD-1234123412341234-01")
	f.Add("")
	f.Add("00-short-short-01")
	f.Add(" 00-aaaabbbbccccddddaaaabbbbccccdddd-1234123412341234-01 ")
	f.Add("00-aaaabbbbccccddddaaaabbbbccccdddd-1234123412341234-01-extra")
	f.Add("00\x00aaaabbbbccccddddaaaabbbbccccdddd-1234123412341234-01")
	f.Fuzz(func(t *testing.T, s string) {
		sc := ParseTraceparent(s)
		if (sc == SpanContext{}) {
			return // rejected: fine, as long as it didn't panic
		}
		if !sc.Valid() {
			t.Fatalf("ParseTraceparent(%q) returned an invalid non-zero context %+v", s, sc)
		}
		if len(sc.Trace) != 32 || len(sc.Span) != 16 {
			t.Fatalf("ParseTraceparent(%q) returned off-size IDs %+v", s, sc)
		}
		if !isHex(sc.Trace) || !isHex(sc.Span) {
			t.Fatalf("ParseTraceparent(%q) accepted non-hex IDs %+v", s, sc)
		}
		// Render-and-reparse must be a fixed point: what we accepted is
		// what we will propagate downstream.
		rt := ParseTraceparent(sc.Traceparent())
		if rt != sc {
			t.Fatalf("round-trip changed the context: %+v -> %q -> %+v", sc, sc.Traceparent(), rt)
		}
		// The accepted IDs must come verbatim from the input (no
		// normalization surprises a proxy could disagree about).
		if !strings.Contains(s, sc.Trace) || !strings.Contains(s, sc.Span) {
			t.Fatalf("ParseTraceparent(%q) fabricated IDs %+v", s, sc)
		}
	})
}

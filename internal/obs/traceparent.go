package obs

import (
	"context"
	"net/http"
	"strings"
)

// W3C Trace Context propagation: "00-<32 hex trace>-<16 hex span>-<2 hex
// flags>". The peer protocol carries exactly this header, so a curl user
// (or an OpenTelemetry-instrumented client) can hand the cluster a trace
// to continue.

// Header is the canonical traceparent header name.
const Header = "traceparent"

// Traceparent renders sc as a W3C traceparent value ("" when invalid).
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() {
		return ""
	}
	return "00-" + sc.Trace + "-" + sc.Span + "-01"
}

// ParseTraceparent decodes a W3C traceparent value; the zero SpanContext
// on any malformation.
func ParseTraceparent(s string) SpanContext {
	s = strings.TrimSpace(s)
	// version(2) - trace(32) - span(16) - flags(2)
	if len(s) != 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}
	}
	if s[:2] == "ff" { // forbidden version
		return SpanContext{}
	}
	sc := SpanContext{Trace: s[3:35], Span: s[36:52]}
	if !isHex(sc.Trace) || !isHex(sc.Span) || !isHex(s[:2]) || !isHex(s[53:]) {
		return SpanContext{}
	}
	if !sc.Valid() {
		return SpanContext{}
	}
	return sc
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Inject stamps sc onto h; a no-op for an invalid context, so disabled
// tracing adds no header and no allocation.
func Inject(h http.Header, sc SpanContext) {
	if !sc.Valid() {
		return
	}
	h.Set(Header, sc.Traceparent())
}

// Extract reads the traceparent header from h; zero context when absent
// or malformed.
func Extract(h http.Header) SpanContext {
	v := h.Get(Header)
	if v == "" {
		return SpanContext{}
	}
	return ParseTraceparent(v)
}

type ctxKey struct{}

// ContextWith returns ctx carrying sc. Invalid contexts return ctx
// unchanged (no allocation), keeping the disabled path free.
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext returns the span context carried by ctx, or the zero
// (invalid) context.
func FromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}

package clock

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMHzPeriod(t *testing.T) {
	cases := []struct {
		mhz  float64
		want int64 // ps
	}{
		{1333, 750},
		{1600, 625},
		{2000, 500},
		{2400, 417},
		{200, 5000},
		{4000, 250},
	}
	for _, c := range cases {
		d := MHz("bus", c.mhz)
		if d.PeriodPS() != c.want {
			t.Errorf("MHz(%v): period = %dps, want %dps", c.mhz, d.PeriodPS(), c.want)
		}
	}
}

func TestCyclesCeil(t *testing.T) {
	bus := MHz("bus", 1333) // 750ps
	cases := []struct {
		ns   float64
		want Cycle
	}{
		{0, 0},
		{-1, 0},
		{0.75, 1},
		{0.76, 2},
		{13.5, 18}, // CAS 18-18-18 at 1333MHz
		{5.0, 7},   // one DRAM core clock
		{32.0, 43}, // tRAS
	}
	for _, c := range cases {
		if got := bus.CyclesCeil(c.ns); got != c.want {
			t.Errorf("CyclesCeil(%vns) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestGHzMatchesMHz(t *testing.T) {
	if GHz("cpu", 4).PeriodPS() != MHz("cpu", 4000).PeriodPS() {
		t.Error("GHz(4) != MHz(4000)")
	}
}

// Property: CyclesCeil always covers the requested duration and never
// overshoots by a full cycle.
func TestCyclesCeilCovers(t *testing.T) {
	bus := MHz("bus", 1333)
	f := func(raw uint16) bool {
		ns := float64(raw) / 16 // 0 .. 4096ns
		cy := bus.CyclesCeil(ns)
		covered := bus.NS(cy)
		return covered+1e-9 >= ns && (cy == 0 || bus.NS(cy-1) < ns+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNSRoundTrip(t *testing.T) {
	bus := MHz("bus", 2000)
	if got := bus.NS(10); math.Abs(got-5.0) > 1e-9 {
		t.Errorf("NS(10) at 2GHz = %v, want 5", got)
	}
}

func TestString(t *testing.T) {
	d := MHz("bus", 1333)
	if got := d.String(); got != "bus@1333MHz" {
		t.Errorf("String() = %q", got)
	}
}

func TestNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MHz(0) did not panic")
		}
	}()
	MHz("bad", 0)
}

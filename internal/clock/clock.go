// Package clock models the fixed-frequency clock domains of the simulated
// system: the DRAM external bus (the master clock of the simulator), the
// CPU core clock, and the DRAM internal core clock. All simulator state is
// stepped in bus cycles; this package owns the conversions between
// wall-clock time and cycles so that timing parameters specified in
// nanoseconds (tRCD, tRP, ...) can be applied at any bus frequency.
package clock

import (
	"fmt"

	"eruca/internal/diag"
)

// Cycle is a point in time or a duration measured in cycles of some
// Domain. The simulator's master Cycle counts DRAM bus clocks.
type Cycle = int64

// Domain is a fixed-frequency clock domain. The zero value is invalid;
// construct domains with MHz or GHz.
type Domain struct {
	name     string
	periodPS int64
}

// MHz returns a clock domain running at the given frequency in MHz.
// A non-positive frequency is a programmer error (config.NewSystem
// validates user-supplied frequencies before reaching here).
func MHz(name string, mhz float64) Domain {
	diag.Invariant(mhz > 0, "clock: non-positive frequency %vMHz for domain %q", mhz, name)
	return Domain{name: name, periodPS: int64(1e6/mhz + 0.5)}
}

// GHz returns a clock domain running at the given frequency in GHz.
func GHz(name string, ghz float64) Domain {
	return MHz(name, ghz*1000)
}

// Name reports the domain's name.
func (d Domain) Name() string { return d.name }

// PeriodPS reports the clock period in picoseconds, rounded to the
// nearest picosecond.
func (d Domain) PeriodPS() int64 { return d.periodPS }

// PeriodNS reports the clock period in nanoseconds.
func (d Domain) PeriodNS() float64 { return float64(d.periodPS) / 1000 }

// FreqMHz reports the domain frequency in MHz.
func (d Domain) FreqMHz() float64 { return 1e6 / float64(d.periodPS) }

// CyclesCeil converts a duration in nanoseconds to the minimum whole
// number of cycles that covers it. DRAM timing constraints specified in
// nanoseconds must always be rounded up when expressed in clocks.
func (d Domain) CyclesCeil(ns float64) Cycle {
	if ns <= 0 {
		return 0
	}
	ps := int64(ns*1000 + 0.5)
	return (ps + d.periodPS - 1) / d.periodPS
}

// NS converts a cycle count in this domain to nanoseconds.
func (d Domain) NS(cycles Cycle) float64 {
	return float64(cycles) * float64(d.periodPS) / 1000
}

// String implements fmt.Stringer.
func (d Domain) String() string {
	return fmt.Sprintf("%s@%.0fMHz", d.name, d.FreqMHz())
}

// Package osmem models the operating-system side of physical memory:
// a buddy allocator over 4KiB frames, transparent huge pages (2MiB), a
// deliberate fragmenter, and the free-memory fragmentation index (FMFI)
// of Gorman & Whitcroft used by the paper to quantify its 10% and 50%
// fragmentation scenarios (Sec. VII).
//
// The paper's RAP and EWLR mechanisms live or die by physical-address
// locality: transparent huge pages leave row-address MSB locality
// (region 1 of Fig. 4), which fragmentation destroys. Simulating the
// allocator — rather than feeding synthetic physical addresses —
// reproduces that effect mechanically.
package osmem

import (
	"math/rand"

	"eruca/internal/diag"
	"eruca/internal/rng"
)

const (
	// FrameBytes is the base page size.
	FrameBytes = 4 << 10
	// MaxOrder is the largest buddy order; order 9 blocks are 2MiB huge
	// pages.
	MaxOrder = 9
	// HugeBytes is the huge-page size.
	HugeBytes = FrameBytes << MaxOrder
)

// Memory is a physical-memory buddy allocator. It is not safe for
// concurrent use.
type Memory struct {
	frames uint32
	free   [MaxOrder + 1][]uint32 // stacks of free block start frames
	// inFree tracks which (start,order) blocks are free, for coalescing:
	// one bitset per order indexed by start>>order. Bitsets replace the
	// map the allocator first shipped with — the fragmenter's mass
	// free/coalesce cycles made map hashing the single hottest setup
	// path of every simulation run.
	inFree     [MaxOrder + 1][]uint64
	freeFrames uint32
	rng        *rand.Rand
	src        *rng.Source // counting source behind rng, for checkpoint/restore
}

// NewMemory builds an allocator over totalBytes of physical memory
// (rounded down to a whole number of max-order blocks). The seed drives
// the fragmenter.
func NewMemory(totalBytes uint64, seed int64) *Memory {
	blocks := uint32(totalBytes / HugeBytes)
	m := &Memory{frames: blocks << MaxOrder}
	m.rng, m.src = rng.New(seed)
	for o := 0; o <= MaxOrder; o++ {
		m.inFree[o] = make([]uint64, (uint64(m.frames>>uint(o))+63)/64)
	}
	m.freeFrames = m.frames
	// Push in descending address order so allocation proceeds from low
	// addresses upward, like a freshly booted system.
	for b := int(blocks) - 1; b >= 0; b-- {
		start := uint32(b) << MaxOrder
		m.free[MaxOrder] = append(m.free[MaxOrder], start)
		m.setFree(start, MaxOrder)
	}
	return m
}

func (m *Memory) isFree(start uint32, order int) bool {
	i := start >> uint(order)
	return m.inFree[order][i>>6]&(1<<(i&63)) != 0
}

func (m *Memory) setFree(start uint32, order int) {
	i := start >> uint(order)
	m.inFree[order][i>>6] |= 1 << (i & 63)
}

func (m *Memory) clearFree(start uint32, order int) {
	i := start >> uint(order)
	m.inFree[order][i>>6] &^= 1 << (i & 63)
}

// FreeBytes reports the free physical memory.
func (m *Memory) FreeBytes() uint64 { return uint64(m.freeFrames) * FrameBytes }

// TotalBytes reports the managed capacity.
func (m *Memory) TotalBytes() uint64 { return uint64(m.frames) * FrameBytes }

// Alloc allocates a block of 2^order frames, returning its start frame.
// ok is false when no block can satisfy the request.
func (m *Memory) Alloc(order int) (start uint32, ok bool) {
	for o := order; o <= MaxOrder; o++ {
		n := len(m.free[o])
		if n == 0 {
			continue
		}
		blk := m.free[o][n-1]
		m.free[o] = m.free[o][:n-1]
		m.clearFree(blk, o)
		// Split down, pushing upper halves so the lower half is served
		// first (keeps consecutive allocations contiguous).
		for o > order {
			o--
			upper := blk + 1<<uint(o)
			m.free[o] = append(m.free[o], upper)
			m.setFree(upper, o)
		}
		m.freeFrames -= 1 << uint(order)
		return blk, true
	}
	return 0, false
}

// Free returns a block to the allocator, coalescing with free buddies.
func (m *Memory) Free(start uint32, order int) {
	diag.Invariant(start&(1<<uint(order)-1) == 0,
		"osmem: Free of misaligned block %d order %d", start, order)
	m.freeFrames += 1 << uint(order)
	for order < MaxOrder {
		buddy := start ^ 1<<uint(order)
		if !m.isFree(buddy, order) {
			break
		}
		// Remove the buddy from its free list and merge.
		m.clearFree(buddy, order)
		m.removeFromList(buddy, order)
		if buddy < start {
			start = buddy
		}
		order++
	}
	m.free[order] = append(m.free[order], start)
	m.setFree(start, order)
}

func (m *Memory) removeFromList(start uint32, order int) {
	lst := m.free[order]
	for i := len(lst) - 1; i >= 0; i-- {
		if lst[i] == start {
			lst[i] = lst[len(lst)-1]
			m.free[order] = lst[:len(lst)-1]
			return
		}
	}
	diag.Invariantf("osmem: free block %d order %d not on list", start, order)
}

// FMFI reports the free-memory fragmentation index at huge-page
// granularity: the fraction of free memory that sits in blocks smaller
// than a huge page and therefore cannot back one [Gorman & Whitcroft;
// Ingens].
func (m *Memory) FMFI() float64 {
	if m.freeFrames == 0 {
		return 1
	}
	hugeFree := uint64(len(m.free[MaxOrder])) << MaxOrder
	return 1 - float64(hugeFree)/float64(m.freeFrames)
}

// Fragment allocates scattered single frames until FMFI reaches the
// target (within tolerance), mimicking the fragmentation tool of the
// paper's methodology [34]. The frames stay allocated for the lifetime
// of the Memory. It returns the achieved FMFI.
func (m *Memory) Fragment(target float64) float64 {
	for m.FMFI() < target {
		n := len(m.free[MaxOrder])
		if n == 0 {
			break
		}
		// Poke one frame out of a random pristine huge block: the other
		// 511 frames stay free but can no longer back a huge page.
		idx := m.rng.Intn(n)
		blk := m.free[MaxOrder][idx]
		m.free[MaxOrder][idx] = m.free[MaxOrder][n-1]
		m.free[MaxOrder] = m.free[MaxOrder][:n-1]
		m.clearFree(blk, MaxOrder)
		victim := blk + uint32(m.rng.Intn(1<<MaxOrder))
		// Re-free every frame except the victim; coalescing rebuilds the
		// largest possible sub-blocks around it.
		m.freeFrames -= 1 << MaxOrder
		for f := blk; f < blk+1<<MaxOrder; f++ {
			if f != victim {
				m.Free(f, 0)
			}
		}
	}
	return m.FMFI()
}

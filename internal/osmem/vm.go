package osmem

import (
	"errors"
	"fmt"
	"math/rand"

	"eruca/internal/rng"
)

// ErrOOM is the typed error returned when physical memory is exhausted
// — a workload sizing problem. Callers (the sim bridge) end the run
// gracefully with partial statistics instead of crashing; test for it
// with errors.Is.
var ErrOOM = errors.New("osmem: physical memory exhausted")

// Process is one simulated address space with demand paging and
// transparent huge pages. Translation is fault-on-first-touch: the
// first access to a virtual page allocates physical memory, preferring a
// 2MiB huge page when THP is enabled and the region can be backed.
type Process struct {
	mem *Memory
	thp bool

	// hugeLuck models the probability that the OS manages to back a
	// 2MiB region with a huge page under the prevailing fragmentation:
	// with the Ingens-style fragmenter at FMFI f, compaction fails for
	// roughly that fraction of regions, so hugeLuck = 1-f at process
	// creation. (Sec. VII: physical addresses depend on the
	// fragmentation level.)
	hugeLuck float64

	pages  map[uint32]uint32 // 4KiB vpn -> pfn
	huge   map[uint32]uint32 // 2MiB region number -> start frame
	noHuge map[uint32]bool   // regions that already fell back to base pages
	rng    *rand.Rand
	src    *rng.Source // counting source behind rng, for checkpoint/restore

	// Stats.
	HugeMapped uint64
	BaseMapped uint64
}

// NewProcess creates an address space on this physical memory. With thp
// enabled, 2MiB-aligned regions are backed by huge pages when
// fragmentation permits.
func (m *Memory) NewProcess(thp bool, seed int64) *Process {
	p := &Process{
		mem:      m,
		thp:      thp,
		hugeLuck: 1 - m.FMFI(),
		pages:    make(map[uint32]uint32),
		huge:     make(map[uint32]uint32),
		noHuge:   make(map[uint32]bool),
	}
	p.rng, p.src = rng.New(seed)
	return p
}

const framesPerHuge = 1 << MaxOrder

// Translate maps a virtual address to a physical address, faulting in
// memory on first touch. When physical memory is exhausted it returns
// an error wrapping ErrOOM so the simulation can end gracefully with
// partial statistics (a workload sizing problem, not a crash).
func (p *Process) Translate(va uint64) (uint64, error) {
	vpn := uint32(va / FrameBytes)
	region := vpn / framesPerHuge

	if start, ok := p.huge[region]; ok {
		return (uint64(start)+uint64(vpn%framesPerHuge))*FrameBytes + va%FrameBytes, nil
	}
	if pfn, ok := p.pages[vpn]; ok {
		return uint64(pfn)*FrameBytes + va%FrameBytes, nil
	}

	// Fault. Try a huge page on the region's first touch; the decision
	// is sticky so a region never mixes huge and base mappings.
	if p.thp && !p.noHuge[region] {
		if p.rng.Float64() < p.hugeLuck {
			if start, ok := p.mem.Alloc(MaxOrder); ok {
				p.huge[region] = start
				p.HugeMapped++
				return (uint64(start)+uint64(vpn%framesPerHuge))*FrameBytes + va%FrameBytes, nil
			}
		}
		p.noHuge[region] = true
	}
	pfn, ok := p.mem.Alloc(0)
	if !ok {
		return 0, fmt.Errorf("translate va %#x (resident %d bytes): %w", va, p.MappedBytes(), ErrOOM)
	}
	p.pages[vpn] = pfn
	p.BaseMapped++
	return uint64(pfn)*FrameBytes + va%FrameBytes, nil
}

// MustTranslate is Translate for callers whose working set provably
// fits (tests, trace preparation); it panics on exhaustion.
func (p *Process) MustTranslate(va uint64) uint64 {
	pa, err := p.Translate(va)
	if err != nil {
		panic(err)
	}
	return pa
}

// MappedBytes reports the resident set size.
func (p *Process) MappedBytes() uint64 {
	return p.HugeMapped*HugeBytes + p.BaseMapped*FrameBytes
}

package osmem

import (
	"testing"
	"testing/quick"
)

func TestAllocFreeRoundTrip(t *testing.T) {
	m := NewMemory(64<<20, 1) // 32 huge blocks
	if m.FreeBytes() != 64<<20 {
		t.Fatalf("free = %d", m.FreeBytes())
	}
	blk, ok := m.Alloc(MaxOrder)
	if !ok {
		t.Fatal("huge alloc failed on empty memory")
	}
	if m.FreeBytes() != 62<<20 {
		t.Errorf("free after huge alloc = %d", m.FreeBytes())
	}
	m.Free(blk, MaxOrder)
	if m.FreeBytes() != 64<<20 {
		t.Errorf("free after release = %d", m.FreeBytes())
	}
}

func TestAllocationsAreContiguousWhenUnfragmented(t *testing.T) {
	m := NewMemory(64<<20, 1)
	var prev uint32
	for i := 0; i < 100; i++ {
		f, ok := m.Alloc(0)
		if !ok {
			t.Fatal("alloc failed")
		}
		if i > 0 && f != prev+1 {
			t.Fatalf("allocation %d at frame %d, previous %d: not contiguous", i, f, prev)
		}
		prev = f
	}
}

func TestCoalescingRebuildsHugeBlocks(t *testing.T) {
	m := NewMemory(4<<20, 1) // 2 huge blocks
	var frames []uint32
	for i := 0; i < 512; i++ {
		f, ok := m.Alloc(0)
		if !ok {
			t.Fatal("alloc failed")
		}
		frames = append(frames, f)
	}
	if got := len(m.free[MaxOrder]); got != 1 {
		t.Fatalf("huge blocks free = %d, want 1", got)
	}
	for _, f := range frames {
		m.Free(f, 0)
	}
	if got := len(m.free[MaxOrder]); got != 2 {
		t.Errorf("huge blocks after coalesce = %d, want 2", got)
	}
	if m.FMFI() != 0 {
		t.Errorf("FMFI after full coalesce = %v", m.FMFI())
	}
}

func TestMisalignedFreePanics(t *testing.T) {
	m := NewMemory(4<<20, 1)
	defer func() {
		if recover() == nil {
			t.Error("misaligned free did not panic")
		}
	}()
	m.Free(3, 2)
}

func TestFragmentHitsTarget(t *testing.T) {
	for _, target := range []float64{0.1, 0.5} {
		m := NewMemory(1<<30, 42)
		got := m.Fragment(target)
		if got < target || got > target+0.05 {
			t.Errorf("Fragment(%v) achieved %v", target, got)
		}
	}
}

// Property: alloc/free sequences conserve free frames.
func TestAllocFreeConservation(t *testing.T) {
	f := func(orders []uint8) bool {
		m := NewMemory(32<<20, 7)
		total := m.FreeBytes()
		type blk struct {
			start uint32
			order int
		}
		var held []blk
		for _, o := range orders {
			order := int(o) % (MaxOrder + 1)
			if s, ok := m.Alloc(order); ok {
				held = append(held, blk{s, order})
			}
		}
		for _, b := range held {
			m.Free(b.start, b.order)
		}
		return m.FreeBytes() == total && m.FMFI() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTranslateStable(t *testing.T) {
	m := NewMemory(256<<20, 1)
	p := m.NewProcess(true, 2)
	addrs := []uint64{0, 4096, 1 << 21, 123456789, 5 << 20}
	first := make([]uint64, len(addrs))
	for i, va := range addrs {
		first[i] = p.MustTranslate(va)
	}
	for i, va := range addrs {
		if got := p.MustTranslate(va); got != first[i] {
			t.Errorf("Translate(%#x) changed: %#x -> %#x", va, first[i], got)
		}
	}
}

// Offsets within a page are preserved; huge-backed regions are
// physically contiguous across 4KiB boundaries.
func TestTranslateContiguityUnderTHP(t *testing.T) {
	m := NewMemory(256<<20, 1)
	p := m.NewProcess(true, 2)
	base := p.MustTranslate(0)
	if p.HugeMapped != 1 {
		t.Fatalf("first touch on pristine memory mapped %d huge pages, want 1", p.HugeMapped)
	}
	for off := uint64(0); off < HugeBytes; off += 4096 * 37 {
		if got := p.MustTranslate(off); got != base+off {
			t.Fatalf("huge region not contiguous at %#x: %#x != %#x", off, got, base+off)
		}
	}
}

// With THP disabled only base pages are mapped.
func TestNoTHP(t *testing.T) {
	m := NewMemory(64<<20, 1)
	p := m.NewProcess(false, 2)
	for va := uint64(0); va < 4<<20; va += FrameBytes {
		p.MustTranslate(va)
	}
	if p.HugeMapped != 0 {
		t.Errorf("huge pages mapped with THP off: %d", p.HugeMapped)
	}
	if p.BaseMapped != 1024 {
		t.Errorf("base pages = %d, want 1024", p.BaseMapped)
	}
}

// Fragmentation reduces huge-page coverage and scatters base pages.
func TestFragmentationReducesHugeCoverage(t *testing.T) {
	low := NewMemory(1<<30, 3)
	low.Fragment(0.1)
	hi := NewMemory(1<<30, 3)
	hi.Fragment(0.5)

	touch := func(m *Memory) (huge, base uint64) {
		p := m.NewProcess(true, 9)
		for va := uint64(0); va < 128<<20; va += FrameBytes {
			p.MustTranslate(va)
		}
		return p.HugeMapped, p.BaseMapped
	}
	lh, _ := touch(low)
	hh, hb := touch(hi)
	if lh <= hh {
		t.Errorf("huge coverage: low-frag %d <= high-frag %d", lh, hh)
	}
	if hb == 0 {
		t.Error("high fragmentation produced no base pages")
	}
}

// A region that fell back to base pages never later flips to huge
// (sticky decision, no double mapping).
func TestRegionDecisionSticky(t *testing.T) {
	m := NewMemory(1<<30, 3)
	m.Fragment(0.5)
	p := m.NewProcess(true, 9)
	for i := 0; i < 200; i++ {
		region := uint64(i) << 21
		a := p.MustTranslate(region)
		wasHuge := p.HugeMapped
		for off := uint64(0); off < 1<<21; off += 4096 * 61 {
			p.MustTranslate(region + off)
		}
		if p.HugeMapped != wasHuge {
			t.Fatalf("region %d flipped to huge after base-page fault", i)
		}
		if got := p.MustTranslate(region); got != a {
			t.Fatalf("region %d first page moved", i)
		}
	}
}

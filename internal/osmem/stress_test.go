package osmem

import (
	"errors"
	"testing"
	"testing/quick"
)

// No physical frame is handed out twice across processes: translations
// of distinct (process, huge-region/page) pairs never overlap.
func TestNoFrameDoubleAllocation(t *testing.T) {
	m := NewMemory(1<<30, 5)
	m.Fragment(0.3)
	procs := []*Process{m.NewProcess(true, 1), m.NewProcess(true, 2), m.NewProcess(false, 3)}
	owner := make(map[uint64]int) // pfn -> process index
	for pi, p := range procs {
		for va := uint64(0); va < 64<<20; va += FrameBytes {
			pfn := p.MustTranslate(va) / FrameBytes
			if prev, taken := owner[pfn]; taken && prev != pi {
				t.Fatalf("frame %d owned by process %d and %d", pfn, prev, pi)
			}
			owner[pfn] = pi
		}
	}
}

// FMFI is monotone under fragmentation pokes.
func TestFMFIMonotone(t *testing.T) {
	m := NewMemory(1<<30, 9)
	prev := m.FMFI()
	for _, target := range []float64{0.05, 0.15, 0.3, 0.6} {
		got := m.Fragment(target)
		if got < prev-1e-12 {
			t.Fatalf("FMFI decreased: %v -> %v", prev, got)
		}
		prev = got
	}
}

// Exhausting physical memory returns the typed ErrOOM (so the sim ends
// gracefully with partial stats), and MustTranslate panics with it.
func TestExhaustionReturnsErrOOM(t *testing.T) {
	m := NewMemory(8<<20, 1) // 2048 frames
	p := m.NewProcess(false, 1)
	var got error
	for va := uint64(0); va < 64<<20; va += FrameBytes {
		if _, err := p.Translate(va); err != nil {
			got = err
			break
		}
	}
	if got == nil {
		t.Fatal("no error after touching 8x physical memory")
	}
	if !errors.Is(got, ErrOOM) {
		t.Errorf("exhaustion error = %v, want errors.Is(..., ErrOOM)", got)
	}

	// MustTranslate converts the error into a panic for sized callers.
	defer func() {
		r := recover()
		if r == nil {
			t.Error("MustTranslate did not panic on exhaustion")
			return
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrOOM) {
			t.Errorf("MustTranslate panicked with %v, want ErrOOM", r)
		}
	}()
	p.MustTranslate(1 << 40)
}

// Alloc fails gracefully (ok=false) when no block of the order exists,
// without corrupting state.
func TestAllocFailureGraceful(t *testing.T) {
	m := NewMemory(4<<20, 1) // 2 huge blocks
	a, ok := m.Alloc(MaxOrder)
	b, ok2 := m.Alloc(MaxOrder)
	if !ok || !ok2 {
		t.Fatal("setup allocs failed")
	}
	if _, ok := m.Alloc(MaxOrder); ok {
		t.Fatal("third huge alloc succeeded on empty memory")
	}
	if _, ok := m.Alloc(0); ok {
		t.Fatal("frame alloc succeeded on fully allocated memory")
	}
	m.Free(a, MaxOrder)
	m.Free(b, MaxOrder)
	if m.FreeBytes() != 4<<20 {
		t.Errorf("free bytes after recovery = %d", m.FreeBytes())
	}
}

// Property: a fragmented memory still satisfies any frame allocation
// while free frames remain, and allocations are distinct.
func TestFragmentedAllocDistinct(t *testing.T) {
	f := func(seed int64) bool {
		m := NewMemory(64<<20, seed)
		m.Fragment(0.4)
		seen := make(map[uint32]bool)
		for i := 0; i < 1000; i++ {
			fr, ok := m.Alloc(0)
			if !ok {
				return m.FreeBytes() == 0
			}
			if seen[fr] {
				return false
			}
			seen[fr] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Huge-page translations stay within capacity.
func TestTranslationsWithinCapacity(t *testing.T) {
	m := NewMemory(256<<20, 2)
	p := m.NewProcess(true, 4)
	for va := uint64(0); va < 128<<20; va += 1 << 20 {
		pa := p.MustTranslate(va)
		if pa >= m.TotalBytes() {
			t.Fatalf("PA %#x beyond capacity %#x", pa, m.TotalBytes())
		}
	}
}

// MappedBytes accounts both page kinds.
func TestMappedBytes(t *testing.T) {
	m := NewMemory(64<<20, 2)
	p := m.NewProcess(true, 4)
	p.MustTranslate(0) // huge (pristine memory)
	if p.MappedBytes() != HugeBytes {
		t.Errorf("mapped = %d, want one huge page", p.MappedBytes())
	}
}

package osmem

import (
	"fmt"
	"sort"

	"eruca/internal/snapshot"
)

// Snapshot serializes the allocator's mutable state: the per-order free
// lists in exact LIFO order (allocation order matters — Alloc pops the
// most recently pushed block) and the fragmenter PRNG cursor. The
// inFree bitsets and freeFrames counter are derived from the free lists
// on restore.
func (m *Memory) Snapshot(e *snapshot.Encoder) {
	e.U32(m.frames)
	for o := 0; o <= MaxOrder; o++ {
		e.Int(len(m.free[o]))
		for _, start := range m.free[o] {
			e.U32(start)
		}
	}
	seed, draws := m.src.State()
	e.I64(seed)
	e.U64(draws)
}

// Restore rebuilds the allocator from a Snapshot stream. The Memory
// must have been constructed over the same capacity.
func (m *Memory) Restore(d *snapshot.Decoder) error {
	frames := d.U32()
	if err := d.Err(); err != nil {
		return err
	}
	if frames != m.frames {
		return fmt.Errorf("osmem: snapshot has %d frames, memory has %d", frames, m.frames)
	}
	var freeFrames uint32
	for o := 0; o <= MaxOrder; o++ {
		for i := range m.inFree[o] {
			m.inFree[o][i] = 0
		}
		n := d.Count(4)
		m.free[o] = m.free[o][:0]
		for i := 0; i < n; i++ {
			start := d.U32()
			if d.Err() != nil {
				return d.Err()
			}
			if start>>uint(o) >= frames>>uint(o) && frames > 0 {
				return fmt.Errorf("osmem: snapshot free block %d order %d out of range", start, o)
			}
			m.free[o] = append(m.free[o], start)
			m.setFree(start, o)
			freeFrames += 1 << uint(o)
		}
	}
	m.freeFrames = freeFrames
	seed := d.I64()
	draws := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	m.src.Restore(seed, draws)
	return nil
}

func snapshotU32Map(e *snapshot.Encoder, m map[uint32]uint32) {
	keys := make([]uint32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	e.Int(len(keys))
	for _, k := range keys {
		e.U32(k)
		e.U32(m[k])
	}
}

func restoreU32Map(d *snapshot.Decoder) map[uint32]uint32 {
	n := d.Count(8)
	m := make(map[uint32]uint32, n)
	for i := 0; i < n; i++ {
		k := d.U32()
		m[k] = d.U32()
	}
	return m
}

// Snapshot serializes the process's page tables, THP policy state and
// fault PRNG cursor. Maps are written in sorted key order so identical
// states produce identical bytes.
func (p *Process) Snapshot(e *snapshot.Encoder) {
	e.Bool(p.thp)
	e.F64(p.hugeLuck)
	snapshotU32Map(e, p.pages)
	snapshotU32Map(e, p.huge)
	keys := make([]uint32, 0, len(p.noHuge))
	for k := range p.noHuge {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	e.Int(len(keys))
	for _, k := range keys {
		e.U32(k)
	}
	seed, draws := p.src.State()
	e.I64(seed)
	e.U64(draws)
	e.U64(p.HugeMapped)
	e.U64(p.BaseMapped)
}

// Restore rebuilds the process from a Snapshot stream. The Process must
// have been created on the restored Memory.
func (p *Process) Restore(d *snapshot.Decoder) error {
	p.thp = d.Bool()
	p.hugeLuck = d.F64()
	p.pages = restoreU32Map(d)
	p.huge = restoreU32Map(d)
	n := d.Count(4)
	p.noHuge = make(map[uint32]bool, n)
	for i := 0; i < n; i++ {
		p.noHuge[d.U32()] = true
	}
	seed := d.I64()
	draws := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	p.src.Restore(seed, draws)
	p.HugeMapped = d.U64()
	p.BaseMapped = d.U64()
	return d.Err()
}

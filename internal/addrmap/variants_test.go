package addrmap

import (
	"testing"

	"eruca/internal/config"
)

// twoRank builds a 2-rank variant at constant capacity.
func twoRank() *config.System {
	g := config.DefaultGeometry()
	g.Ranks = 2
	g.RowBits--
	sch := config.Scheme{Name: "2rank", Mode: config.SubBankNone, BankGrouping: true}
	return config.MustSystem("2rank", g, sch, config.DDR4Timing(), config.DefaultBusMHz,
		config.DefaultController(), config.DefaultCPU())
}

func TestTwoRankMapping(t *testing.T) {
	sys := twoRank()
	m := New(sys)
	ranks := map[int]int{}
	seen := make(map[Loc]uint64)
	for i := uint64(0); i < 1<<14; i++ {
		pa := (i * 0x9E3779B97F4A7C15) & (1<<35 - 1) &^ 63
		l := m.Map(pa)
		if l.Rank < 0 || l.Rank >= 2 {
			t.Fatalf("rank %d out of range", l.Rank)
		}
		ranks[l.Rank]++
		if prev, dup := seen[l]; dup && prev != pa {
			t.Fatalf("collision: %#x and %#x -> %v", prev, pa, l)
		}
		seen[l] = pa
	}
	if ranks[0] == 0 || ranks[1] == 0 {
		t.Errorf("rank distribution %v", ranks)
	}
}

// Stacked MASA carries both a sub-bank select and full MASA row space.
func TestStackedMapping(t *testing.T) {
	sys := config.MASAERUCA(8, 4, true, config.DefaultBusMHz)
	m := New(sys)
	if m.RowBits() != sys.Geom.RowBits-1 {
		t.Errorf("stacked row bits = %d", m.RowBits())
	}
	subs := map[int]int{}
	for i := uint64(0); i < 4096; i++ {
		l := m.Map(i * 64 * 131)
		subs[l.Sub]++
	}
	if subs[0] == 0 || subs[1] == 0 {
		t.Errorf("stacked sub distribution %v", subs)
	}
}

// Disabling the sub-bank hash yields a plain position-derived select.
func TestSubHashDisabled(t *testing.T) {
	sys := config.VSB(4, true, true, true, config.DefaultBusMHz)
	sys.Scheme.SubHashDisabled = true
	m := New(sys)
	// With the hash off, two addresses differing only in high row bits
	// share the same sub-bank.
	a := m.Map(0x0000_0000)
	b := m.Map(0x2000_0000)
	if a.Sub != b.Sub {
		t.Error("plain sub-bank select varied with row MSBs")
	}
	// With the hash on, flipping a folded row bit flips the sub-bank.
	sys2 := config.VSB(4, true, true, true, config.DefaultBusMHz)
	m2 := New(sys2)
	diff := false
	for i := uint64(0); i < 8 && !diff; i++ {
		x := m2.Map(i << 20)
		y := m2.Map(i<<20 ^ 1<<23) // row bit 4
		diff = x.Sub != y.Sub
	}
	if !diff {
		t.Error("hashed sub-bank select never varied with row bits")
	}
}

// MASA (non-stacked) exposes the full row space and no sub-banks.
func TestMASAMapping(t *testing.T) {
	sys := config.MASA(8, config.DefaultBusMHz)
	m := New(sys)
	if m.RowBits() != sys.Geom.RowBits {
		t.Errorf("MASA row bits = %d", m.RowBits())
	}
	for i := uint64(0); i < 1024; i++ {
		if l := m.Map(i * 64 * 977); l.Sub != 0 {
			t.Fatal("MASA mapping produced a sub-bank")
		}
	}
}

// The Loc string form is stable and informative.
func TestLocString(t *testing.T) {
	l := Loc{Channel: 1, Group: 2, Bank: 3, Sub: 1, Row: 0xBEEF, Col: 0x2A}
	s := l.String()
	if s != "ch1/rk0/bg2/bk3/sb1/r0beef/c2a" {
		t.Errorf("Loc string = %q", s)
	}
}

// All preset systems produce in-range, collision-free mappings over a
// sample (cross-preset property).
func TestAllPresetsMapSafely(t *testing.T) {
	for _, name := range config.RegistryNames() {
		sys, err := config.ByName(name, 4, config.DefaultBusMHz)
		if err != nil {
			t.Fatal(err)
		}
		m := New(sys)
		seen := make(map[Loc]uint64, 4096)
		for i := uint64(0); i < 4096; i++ {
			pa := (i*0x9E3779B97F4A7C15 + 12345) & (1<<35 - 1) &^ 63
			l := m.Map(pa)
			if prev, dup := seen[l]; dup && prev != pa {
				t.Fatalf("%s: collision %#x vs %#x -> %v", name, prev, pa, l)
			}
			seen[l] = pa
		}
	}
}

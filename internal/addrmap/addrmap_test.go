package addrmap

import (
	"testing"
	"testing/quick"

	"eruca/internal/config"
)

func baseline() *config.System { return config.Baseline(config.DefaultBusMHz) }
func vsb() *config.System      { return config.VSB(4, true, true, true, config.DefaultBusMHz) }

func TestFieldRanges(t *testing.T) {
	for _, sys := range []*config.System{
		baseline(), vsb(),
		config.Ideal32(config.DefaultBusMHz),
		config.PairedBank(4, false, config.DefaultBusMHz),
		config.MASA(8, config.DefaultBusMHz),
		config.MASAERUCA(8, 4, true, config.DefaultBusMHz),
	} {
		m := New(sys)
		g := sys.Geom
		banks := g.BanksPerGroup
		if sys.Scheme.Mode == config.SubBankPaired {
			banks /= 2
		}
		for pa := uint64(0); pa < 1<<22; pa += 4093 * 64 {
			l := m.Map(pa * 977) // scatter
			if l.Channel < 0 || l.Channel >= g.Channels {
				t.Fatalf("%s: channel %d out of range", sys.Name, l.Channel)
			}
			if l.Group < 0 || l.Group >= g.BankGroups {
				t.Fatalf("%s: group %d out of range", sys.Name, l.Group)
			}
			if l.Bank < 0 || l.Bank >= banks {
				t.Fatalf("%s: bank %d out of range", sys.Name, l.Bank)
			}
			if l.Sub < 0 || l.Sub >= sys.Scheme.SubBanksPerBank() {
				t.Fatalf("%s: sub %d out of range", sys.Name, l.Sub)
			}
			if int(l.Row) >= 1<<uint(m.RowBits()) {
				t.Fatalf("%s: row %#x out of range for %d bits", sys.Name, l.Row, m.RowBits())
			}
			if int(l.Col) >= 1<<uint(g.ColBits) {
				t.Fatalf("%s: col %#x out of range", sys.Name, l.Col)
			}
		}
	}
}

// Two addresses differing only in their line offset map to the same
// location and column... differing in bits [6,8) map to the same row.
func TestLineOffsetInvariance(t *testing.T) {
	m := New(vsb())
	f := func(pa uint64, off uint8) bool {
		a := m.Map(pa &^ 63)
		b := m.Map((pa &^ 63) | uint64(off&63))
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The mapping must be a bijection over the physical address space: two
// distinct line addresses never collide on the same full location.
func TestBijection(t *testing.T) {
	for _, sys := range []*config.System{baseline(), vsb(), config.PairedBank(4, false, config.DefaultBusMHz)} {
		m := New(sys)
		seen := make(map[Loc]uint64)
		// Cover a contiguous window plus a scattered sample.
		probe := func(pa uint64) {
			l := m.Map(pa)
			if prev, dup := seen[l]; dup && prev != pa {
				t.Fatalf("%s: %#x and %#x both map to %v", sys.Name, prev, pa, l)
			}
			seen[l] = pa
		}
		for pa := uint64(0); pa < 1<<20; pa += 64 {
			probe(pa)
		}
		for i := uint64(0); i < 1<<14; i++ {
			probe((i * 0x9E3779B97F4A7C15) & (1<<35 - 1) &^ 63)
		}
	}
}

// A 64-line sequential stream must spread over both channels and several
// bank groups: that is the entire point of the Skylake-style hashing.
func TestSequentialSpreads(t *testing.T) {
	m := New(baseline())
	chans := map[int]int{}
	groups := map[int]int{}
	for i := uint64(0); i < 256; i++ {
		l := m.Map(i * 64)
		chans[l.Channel]++
		groups[l.Group]++
	}
	if len(chans) != 2 {
		t.Errorf("sequential stream used %d channels, want 2", len(chans))
	}
	if len(groups) != 4 {
		t.Errorf("sequential stream used %d bank groups, want 4", len(groups))
	}
}

// Row-strided streams (stride = one full row) must not camp on a single
// bank: XOR folding spreads them.
func TestRowStrideSpreadsBanks(t *testing.T) {
	sys := baseline()
	m := New(sys)
	stride := uint64(sys.Geom.RowBytes() * sys.Geom.Banks() * sys.Geom.Channels)
	banks := map[int]int{}
	for i := uint64(0); i < 64; i++ {
		l := m.Map(i * stride)
		banks[m.BankID(l)*2+l.Channel]++
	}
	if len(banks) < 8 {
		t.Errorf("row-strided stream hit only %d (bank,channel) pairs", len(banks))
	}
}

// Under VSB the sub-bank select must flip within a modest footprint so
// that distinct streams can interleave across sub-banks.
func TestSubBankBalance(t *testing.T) {
	m := New(vsb())
	subs := [2]int{}
	for i := uint64(0); i < 1<<13; i++ {
		l := m.Map(i * 64 * 1021 % (1 << 33) &^ 63)
		subs[l.Sub]++
	}
	total := subs[0] + subs[1]
	if subs[0] < total/3 || subs[1] < total/3 {
		t.Errorf("sub-bank imbalance: %v", subs)
	}
}

func TestPairedBankFields(t *testing.T) {
	sys := config.PairedBank(4, false, config.DefaultBusMHz)
	m := New(sys)
	if m.RowBits() != sys.Geom.RowBits {
		t.Errorf("paired row bits = %d, want %d (full bank row space)", m.RowBits(), sys.Geom.RowBits)
	}
	seenSub := map[int]bool{}
	for i := uint64(0); i < 1<<12; i++ {
		l := m.Map(i << 16)
		seenSub[l.Sub] = true
		if l.Bank >= sys.Geom.BanksPerGroup/2 {
			t.Fatalf("paired bank index %d out of range", l.Bank)
		}
	}
	if !seenSub[0] || !seenSub[1] {
		t.Error("paired mapping never used both sub-banks")
	}
}

func TestVSBRowBitsNarrower(t *testing.T) {
	if b, v := New(baseline()).RowBits(), New(vsb()).RowBits(); v != b-1 {
		t.Errorf("VSB row bits = %d, want baseline-1 = %d", v, b-1)
	}
}

// Package addrmap translates physical addresses into DRAM locations
// (channel, rank, bank group, bank, sub-bank, row, column).
//
// The mapping follows the Intel Skylake style used in the paper's
// evaluation (Tab. III, Fig. 9): address LSBs feed the parallel resources
// (column, channel, bank group, bank) and the MSBs feed the row, with
// XOR folding of row bits into the channel/group/bank/sub-bank selects so
// that strided streams spread across parallel resources
// (permutation-based interleaving).
//
// Sub-banking schemes repurpose one low-order field position as the
// sub-bank select: an x4 Combo DRAM bank physically selects its
// left/right half with a row-address bit, and ERUCA exposes that bit to
// the controller so it can interleave sub-banks (Fig. 9 "sub-bank ID").
package addrmap

import (
	"fmt"

	"eruca/internal/config"
)

// Loc is a fully decoded DRAM location for one cache-line transaction.
type Loc struct {
	Channel int
	Rank    int
	Group   int // bank group
	Bank    int // bank within group (pair index under paired-bank)
	Sub     int // sub-bank within bank; 0 when the scheme has no sub-banks
	Row     uint32
	Col     uint32
}

// String implements fmt.Stringer.
func (l Loc) String() string {
	return fmt.Sprintf("ch%d/rk%d/bg%d/bk%d/sb%d/r%05x/c%02x",
		l.Channel, l.Rank, l.Group, l.Bank, l.Sub, l.Row, l.Col)
}

// Mapper decodes physical addresses for one System configuration.
// Mappers are immutable and safe for concurrent use.
type Mapper struct {
	lineBits  int
	colLoBits int
	bgLoBits  int // low bank-group bit(s), below the channel bit (Fig. 9)
	chBits    int
	colHiBits int
	bgHiBits  int
	bankBits  int
	rankBits  int
	rowSBBits int // row field including the sub-bank select position

	colLoShift, bgLoShift, chShift, subShift, colHiShift, bgHiShift, bankShift, rankShift, rowShift uint

	mode      config.SubBankMode
	hasSubBit bool // VSB-style: a dedicated low sub-bank-select position
	subHash   bool // XOR-fold row bits into the sub-bank select

	addrBits int
}

// New builds the Mapper for a system configuration.
func New(sys *config.System) *Mapper {
	g := sys.Geom
	m := &Mapper{
		lineBits:  log2(g.LineBytes),
		colLoBits: 2,
		chBits:    log2(g.Channels),
		bankBits:  log2(g.BanksPerGroup),
		rankBits:  log2(g.Ranks),
		rowSBBits: g.RowBits,
		mode:      sys.Scheme.Mode,

		subHash:  !sys.Scheme.SubHashDisabled,
		addrBits: g.AddrBits(),
	}
	switch sys.Scheme.Mode {
	case config.SubBankVSB, config.SubBankHalfDRAM:
		m.hasSubBit = true
	case config.SubBankMASA:
		m.hasSubBit = sys.Scheme.MASAStacked
	}

	// Fig. 9 field order, LSB to MSB:
	//   offset | col | BG | ch | sub-bank | col | BG | bank | rank | row
	// The bank-group bits sit below the channel bit so that sequential
	// streams alternate bank groups every few lines, dodging tCCD_L; the
	// sub-bank select — physically a row-address bit in the DRAM — is
	// fed from a low position so it changes frequently (Fig. 9 #1
	// "sub-bank ID"). The displaced row bit moves to the top.
	bgBits := log2(g.BankGroups)
	m.bgLoBits = bgBits
	if m.bgLoBits > 2 {
		m.bgLoBits = 2
	}
	m.bgHiBits = bgBits - m.bgLoBits
	m.colHiBits = g.ColBits - m.colLoBits
	subBits := 0
	if m.hasSubBit {
		subBits = 1
	}
	shift := uint(m.lineBits)
	m.colLoShift, shift = shift, shift+uint(m.colLoBits)
	m.bgLoShift, shift = shift, shift+uint(m.bgLoBits)
	m.chShift, shift = shift, shift+uint(m.chBits)
	m.subShift, shift = shift, shift+uint(subBits)
	m.colHiShift, shift = shift, shift+uint(m.colHiBits)
	m.bgHiShift, shift = shift, shift+uint(m.bgHiBits)
	m.bankShift, shift = shift, shift+uint(m.bankBits)
	m.rankShift, shift = shift, shift+uint(m.rankBits)
	m.rowShift = shift
	return m
}

// AddrBits reports the physical-address width the mapper decodes.
func (m *Mapper) AddrBits() int { return m.addrBits }

// RowBits reports the per-(sub-)bank row-address width the mapper
// produces in Loc.Row.
func (m *Mapper) RowBits() int {
	if m.hasSubBit {
		return m.rowSBBits - 1
	}
	return m.rowSBBits
}

func bits(pa uint64, shift uint, n int) uint64 {
	return (pa >> shift) & (1<<uint(n) - 1)
}

// Map decodes a physical address. Addresses beyond the configured
// capacity wrap (the top bits are masked).
func (m *Mapper) Map(pa uint64) Loc {
	pa &= 1<<uint(m.addrBits) - 1

	rowBits := m.rowSBBits
	if m.hasSubBit {
		rowBits--
	}
	rowsb := bits(pa, m.rowShift, rowBits)

	var loc Loc
	colLo := bits(pa, m.colLoShift, m.colLoBits)
	colHi := bits(pa, m.colHiShift, m.colHiBits)
	loc.Col = uint32(colHi<<uint(m.colLoBits) | colLo)

	// Permutation-based interleaving: XOR row LSBs into the channel,
	// group and bank selects so that row-strided access patterns still
	// spread across the parallel resources (Zhang et al. [28], as in
	// Skylake [30]).
	ch := bits(pa, m.chShift, m.chBits)
	if m.chBits > 0 {
		ch ^= (rowsb ^ rowsb>>3 ^ rowsb>>7) & (1<<uint(m.chBits) - 1)
	}
	loc.Channel = int(ch)

	bg := bits(pa, m.bgHiShift, m.bgHiBits)<<uint(m.bgLoBits) | bits(pa, m.bgLoShift, m.bgLoBits)
	if nbg := m.bgLoBits + m.bgHiBits; nbg > 0 {
		bg ^= (rowsb>>1 ^ rowsb>>5) & (1<<uint(nbg) - 1)
	}
	loc.Group = int(bg)

	bank := bits(pa, m.bankShift, m.bankBits)
	if m.bankBits > 0 {
		bank ^= (rowsb>>3 ^ rowsb>>8) & (1<<uint(m.bankBits) - 1)
	}

	loc.Rank = int(bits(pa, m.rankShift, m.rankBits))

	switch {
	case m.hasSubBit:
		// VSB / Half-DRAM / stacked MASA: the physical half-select row
		// bit is fed from a low address position so it changes often,
		// XOR-folded with row bits for spreading.
		sub := bits(pa, m.subShift, 1)
		if m.subHash {
			sub ^= (rowsb>>4 ^ rowsb>>9) & 1
		}
		loc.Sub = int(sub)
		loc.Row = uint32(rowsb)
		loc.Bank = int(bank)
	case m.mode == config.SubBankPaired:
		// Paired banks: adjacent banks within a group form a pair; the
		// low bank bit selects the sub-bank (which constituent bank).
		loc.Sub = int(bank & 1)
		loc.Bank = int(bank >> 1)
		loc.Row = uint32(rowsb)
	default:
		loc.Sub = 0
		loc.Bank = int(bank)
		loc.Row = uint32(rowsb)
	}
	return loc
}

// BankID flattens (group, bank) into a per-rank bank index.
func (m *Mapper) BankID(l Loc) int {
	banks := 1 << uint(m.bankBits)
	if m.mode == config.SubBankPaired {
		banks >>= 1
	}
	return l.Group*banks + l.Bank
}

func log2(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

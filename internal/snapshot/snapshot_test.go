package snapshot

import (
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var e Encoder
	e.U8(7)
	e.Bool(true)
	e.Bool(false)
	e.U32(0xdeadbeef)
	e.U64(1 << 62)
	e.I64(-12345)
	e.Int(42)
	e.F64(3.14159)
	e.Str("hello, dram")
	e.Str("")
	e.Bytes([]byte{1, 2, 3})
	e.Bytes(nil)
	blob := e.Seal()

	d, err := Open(blob)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if got := d.U8(); got != 7 {
		t.Fatalf("U8 = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool mismatch")
	}
	if got := d.U32(); got != 0xdeadbeef {
		t.Fatalf("U32 = %x", got)
	}
	if got := d.U64(); got != 1<<62 {
		t.Fatalf("U64 = %d", got)
	}
	if got := d.I64(); got != -12345 {
		t.Fatalf("I64 = %d", got)
	}
	if got := d.Int(); got != 42 {
		t.Fatalf("Int = %d", got)
	}
	if got := d.F64(); got != 3.14159 {
		t.Fatalf("F64 = %v", got)
	}
	if got := d.Str(); got != "hello, dram" {
		t.Fatalf("Str = %q", got)
	}
	if got := d.Str(); got != "" {
		t.Fatalf("empty Str = %q", got)
	}
	if got := d.BytesField(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Bytes = %v", got)
	}
	if got := d.BytesField(); len(got) != 0 {
		t.Fatalf("nil Bytes = %v", got)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func mustDecodeError(t *testing.T, err error, substr string) {
	t.Helper()
	if err == nil {
		t.Fatalf("want DecodeError containing %q, got nil", substr)
	}
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("want *DecodeError, got %T: %v", err, err)
	}
	if !strings.Contains(de.Error(), substr) {
		t.Fatalf("error %q does not mention %q", de.Error(), substr)
	}
}

func TestOpenRejectsTruncated(t *testing.T) {
	var e Encoder
	e.U64(99)
	blob := e.Seal()
	for cut := 0; cut < len(blob); cut++ {
		if _, err := Open(blob[:cut]); err == nil {
			t.Fatalf("Open accepted blob truncated to %d bytes", cut)
		} else {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("truncation to %d: got %T, want *DecodeError", cut, err)
			}
		}
	}
}

func TestOpenRejectsBadMagic(t *testing.T) {
	var e Encoder
	blob := e.Seal()
	blob[0] ^= 0xff
	_, err := Open(blob)
	mustDecodeError(t, err, "magic")
}

func TestOpenRejectsVersionSkew(t *testing.T) {
	var e Encoder
	e.U32(1)
	blob := e.Seal()
	binary.BigEndian.PutUint32(blob[8:], Version+1)
	_, err := Open(blob)
	mustDecodeError(t, err, "version")
}

func TestOpenRejectsCorruptPayload(t *testing.T) {
	var e Encoder
	e.Str("payload that will be flipped")
	blob := e.Seal()
	blob[len(blob)-40] ^= 0x01 // inside payload, before checksum
	_, err := Open(blob)
	mustDecodeError(t, err, "checksum")
}

func TestDecoderStickyError(t *testing.T) {
	var e Encoder
	e.U32(5)
	blob := e.Seal()
	d, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	d.U32()
	d.U64() // past end
	mustDecodeError(t, d.Err(), "remain")
	// Subsequent reads stay safe and keep the first error.
	d.Str()
	d.BytesField()
	d.I64()
	mustDecodeError(t, d.Err(), "remain")
	if err := d.Close(); err == nil {
		t.Fatal("Close should report the sticky error")
	}
}

func TestCloseRejectsTrailingBytes(t *testing.T) {
	var e Encoder
	e.U32(1)
	e.U32(2)
	blob := e.Seal()
	d, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	d.U32()
	mustDecodeError(t, d.Close(), "trailing")
}

func TestCountGuardsHostileLengths(t *testing.T) {
	var e Encoder
	e.Int(1 << 40) // absurd element count
	blob := e.Seal()
	d, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	if n := d.Count(8); n != 0 {
		t.Fatalf("Count = %d, want 0", n)
	}
	mustDecodeError(t, d.Err(), "count")

	var e2 Encoder
	e2.Int(-3)
	d2, err := Open(e2.Seal())
	if err != nil {
		t.Fatal(err)
	}
	d2.Count(1)
	mustDecodeError(t, d2.Err(), "negative")
}

package snapshot

import (
	"errors"
	"testing"
)

// FuzzDecode feeds arbitrary bytes through the container validator and
// a representative field-read sequence. The invariant: decoding hostile
// input must either succeed or fail with a typed *DecodeError — it may
// never panic, index out of range, or allocate absurdly.
func FuzzDecode(f *testing.F) {
	// Seed corpus: a valid blob, plus truncations and bit flips.
	var e Encoder
	e.U8(3)
	e.Bool(true)
	e.U64(777)
	e.Str("seed")
	e.Bytes([]byte{9, 9})
	e.Int(2)
	e.F64(1.5)
	valid := e.Seal()
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:16])
	f.Add([]byte{})
	flipped := append([]byte(nil), valid...)
	flipped[20] ^= 0x80
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Open(data)
		if err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("Open returned non-typed error %T: %v", err, err)
			}
			return
		}
		// Exercise every field reader against whatever payload survived
		// container validation.
		d.U8()
		d.Bool()
		d.U64()
		d.Str()
		d.BytesField()
		n := d.Count(8)
		if n > d.Remaining() {
			t.Fatalf("Count returned %d with only %d bytes remaining", n, d.Remaining())
		}
		for i := 0; i < n; i++ {
			d.U64()
		}
		d.F64()
		d.U32()
		d.I64()
		if err := d.Err(); err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("Decoder surfaced non-typed error %T: %v", err, err)
			}
		}
		_ = d.Close()
	})
}

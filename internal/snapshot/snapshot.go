// Package snapshot implements the versioned, checksummed binary
// container used for crash-safe simulator checkpoints.
//
// Layout of a sealed snapshot blob:
//
//	offset  size  field
//	0       8     magic "ERUCASN1"
//	8       4     format version (big-endian uint32)
//	12      4     payload length N (big-endian uint32)
//	16      N     payload (Encoder stream)
//	16+N    32    SHA-256 over bytes [0, 16+N)
//
// The payload is a flat stream of primitively-encoded fields written
// by Encoder and read back in the same order by Decoder. There is no
// self-description: reader and writer must agree on the field
// sequence, which is what the format version pins. Any structural
// change to what a subsystem serializes MUST bump Version.
//
// Decoder is hardened against arbitrary input: every read is
// bounds-checked, length prefixes are validated against the remaining
// payload, and all failures surface as a typed *DecodeError — never a
// panic, never an out-of-range slice. This is fuzzed (FuzzDecode).
package snapshot

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
)

// Version is the current snapshot format version. Bump on any change
// to the field sequence emitted by any Snapshot method.
const Version = 1

const (
	magic      = "ERUCASN1"
	headerLen  = len(magic) + 4 + 4 // magic + version + payload length
	sumLen     = sha256.Size
	maxPayload = 1 << 30 // sanity bound: 1 GiB
)

// DecodeError is the typed error for every snapshot decoding failure:
// truncated blobs, checksum mismatches, version skew, bad length
// prefixes, or reading past the end of the payload.
type DecodeError struct {
	Off    int    // byte offset in the payload (or -1 for container-level errors)
	Reason string // human-readable description
}

func (e *DecodeError) Error() string {
	if e.Off < 0 {
		return "snapshot: " + e.Reason
	}
	return fmt.Sprintf("snapshot: payload offset %d: %s", e.Off, e.Reason)
}

func containerErr(format string, args ...any) *DecodeError {
	return &DecodeError{Off: -1, Reason: fmt.Sprintf(format, args...)}
}

// Encoder accumulates a flat field stream. The zero value is ready to
// use.
type Encoder struct {
	buf []byte
}

func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

func (e *Encoder) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, b)
}

func (e *Encoder) U32(v uint32)  { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *Encoder) U64(v uint64)  { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *Encoder) I64(v int64)   { e.U64(uint64(v)) }
func (e *Encoder) Int(v int)     { e.I64(int64(v)) }
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Str writes a length-prefixed string.
func (e *Encoder) Str(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Bytes writes a length-prefixed byte slice.
func (e *Encoder) Bytes(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Len reports the current payload length.
func (e *Encoder) Len() int { return len(e.buf) }

// Seal wraps the accumulated payload in the container: magic, version,
// length, payload, SHA-256 checksum.
func (e *Encoder) Seal() []byte {
	out := make([]byte, 0, headerLen+len(e.buf)+sumLen)
	out = append(out, magic...)
	out = binary.BigEndian.AppendUint32(out, Version)
	out = binary.BigEndian.AppendUint32(out, uint32(len(e.buf)))
	out = append(out, e.buf...)
	sum := sha256.Sum256(out)
	return append(out, sum[:]...)
}

// Decoder reads back a field stream produced by Encoder. Errors are
// sticky: after the first failure every subsequent read returns the
// zero value and Err() keeps reporting the original *DecodeError.
type Decoder struct {
	buf []byte
	off int
	err *DecodeError
}

// Open validates the container (magic, version, length, checksum) and
// returns a Decoder positioned at the start of the payload.
func Open(blob []byte) (*Decoder, error) {
	if len(blob) < headerLen+sumLen {
		return nil, containerErr("truncated container: %d bytes, need at least %d", len(blob), headerLen+sumLen)
	}
	if string(blob[:len(magic)]) != magic {
		return nil, containerErr("bad magic %q", blob[:len(magic)])
	}
	ver := binary.BigEndian.Uint32(blob[len(magic):])
	if ver != Version {
		return nil, containerErr("format version %d, this build reads version %d", ver, Version)
	}
	n := binary.BigEndian.Uint32(blob[len(magic)+4:])
	if n > maxPayload {
		return nil, containerErr("payload length %d exceeds sanity bound", n)
	}
	if len(blob) != headerLen+int(n)+sumLen {
		return nil, containerErr("container length %d does not match declared payload %d", len(blob), n)
	}
	body := blob[:headerLen+int(n)]
	want := blob[headerLen+int(n):]
	sum := sha256.Sum256(body)
	if string(sum[:]) != string(want) {
		return nil, containerErr("checksum mismatch: snapshot is corrupt")
	}
	return &Decoder{buf: blob[headerLen : headerLen+int(n)]}, nil
}

// Err returns the first decoding error, if any. Callers should check
// it once after the final field read.
func (d *Decoder) Err() error {
	if d.err == nil {
		return nil
	}
	return d.err
}

// Remaining reports how many payload bytes are left unread.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Close verifies the payload was consumed exactly.
func (d *Decoder) Close() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		d.fail("payload has %d trailing bytes", len(d.buf)-d.off)
		return d.err
	}
	return nil
}

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = &DecodeError{Off: d.off, Reason: fmt.Sprintf(format, args...)}
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf)-d.off < n {
		d.fail("need %d bytes, %d remain", n, len(d.buf)-d.off)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *Decoder) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.off-- // point at the offending byte
		d.fail("invalid bool byte")
		d.off++
		return false
	}
}

func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *Decoder) I64() int64   { return int64(d.U64()) }
func (d *Decoder) Int() int     { return int(d.I64()) }
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

func (d *Decoder) Str() string {
	n := d.U32()
	if d.err != nil {
		return ""
	}
	b := d.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

func (d *Decoder) BytesField() []byte {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// Count reads a length written with Encoder.Int and validates it as a
// non-negative element count that could plausibly fit in the remaining
// payload (each element needs at least minBytes). Guards decoders that
// pre-allocate slices from hostile lengths.
func (d *Decoder) Count(minBytes int) int {
	n := d.I64()
	if d.err != nil {
		return 0
	}
	if n < 0 {
		d.fail("negative element count %d", n)
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n > int64(d.Remaining()/minBytes)+1 {
		d.fail("element count %d exceeds remaining payload", n)
		return 0
	}
	return int(n)
}

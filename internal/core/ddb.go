package core

import "eruca/internal/clock"

// DDBWindow enforces the dual-data-bus command windows of Sec. VI-B for
// one bank group. DDB gives each bank group two chip-global buses, so up
// to two column accesses may overlap; a third within one DRAM core clock
// would need a third bus. The two constraints are:
//
//   - tTCW (two-column window, Fig. 10a/b): a column command must wait
//     until at least tTCW after the second-most-recent column command of
//     the same direction;
//   - tTWTRW (two-write-to-read window, Fig. 10c): a read must wait
//     tTWTRW = WL + 4CLK + tWTR_L after the first of two closely spaced
//     writes.
//
// Both windows apply only when the DRAM core clock is longer than two
// external bursts (otherwise the external bus cannot out-pace the
// array); CycleTiming.TwoCommandWindowsOn captures that.
//
// The zero value is an unconstrained window (DDB off or windows not
// binding).
type DDBWindow struct {
	enabled bool
	tcw     clock.Cycle
	twtrw   clock.Cycle

	lastRd [2]clock.Cycle // [0] most recent, [1] before that
	lastWr [2]clock.Cycle
}

// NewDDBWindow returns a window enforcing tTCW/tTWTRW when enabled.
func NewDDBWindow(enabled bool, tcw, twtrw clock.Cycle) DDBWindow {
	w := DDBWindow{enabled: enabled, tcw: tcw, twtrw: twtrw}
	w.lastRd = [2]clock.Cycle{-1 << 60, -1 << 60}
	w.lastWr = [2]clock.Cycle{-1 << 60, -1 << 60}
	return w
}

// EarliestColumn reports the earliest cycle a column command of the
// given direction may issue in this bank group.
func (w *DDBWindow) EarliestColumn(read bool) clock.Cycle {
	if !w.enabled {
		return 0
	}
	if read {
		e := w.lastRd[1] + w.tcw
		// tTWTRW: a read after two successive writes waits tTWTRW from
		// the first of the pair. If the writes were far apart this bound
		// is already in the past.
		if t := w.lastWr[1] + w.twtrw; t > e {
			e = t
		}
		return e
	}
	return w.lastWr[1] + w.tcw
}

// Record notes a column command issued at the given cycle.
func (w *DDBWindow) Record(at clock.Cycle, read bool) {
	if !w.enabled {
		return
	}
	if read {
		w.lastRd[1], w.lastRd[0] = w.lastRd[0], at
	} else {
		w.lastWr[1], w.lastWr[0] = w.lastWr[0], at
	}
}

// MASASlots derives the subarray-group slot of a row for the MASA
// comparison model. SALP exposes the subarray bits to the memory
// controller and interleaves rows across subarray groups (the row
// decoder is free to place consecutive row addresses in different
// groups), so the slot is taken from the row-address LSBs — otherwise
// huge-page MSB locality would park all traffic in one subarray and
// waste the extra row buffers.
type MASASlots struct {
	mask uint32
}

// NewMASASlots builds slot selection for `groups` subarray groups over a
// rowBits-wide row address.
func NewMASASlots(groups, rowBits int) MASASlots {
	_ = rowBits
	return MASASlots{mask: uint32(groups - 1)}
}

// Slot returns the subarray group holding the row.
func (m MASASlots) Slot(row uint32) int { return int(row & m.mask) }

package core

import (
	"testing"
	"testing/quick"

	"eruca/internal/config"
)

const rowBits = 16

func logic(planes int, ewlr, rap bool, mode config.PlaneBitsMode) *PlaneLogic {
	sch := config.Scheme{
		Name:      "t",
		Mode:      config.SubBankVSB,
		Planes:    planes,
		PlaneBits: mode,
		EWLR:      ewlr,
		EWLRBits:  3,
		RAP:       rap,
	}
	return NewPlaneLogic(sch, rowBits)
}

func TestPlaneIDHighBits(t *testing.T) {
	p := logic(4, false, false, config.PlaneBitsHigh)
	cases := []struct {
		row  uint32
		want int
	}{
		{0x0000, 0},
		{0x3FFF, 0},
		{0x4000, 1},
		{0x8000, 2},
		{0xC000, 3},
		{0xFFFF, 3},
	}
	for _, c := range cases {
		if got := p.PlaneID(c.row, 0); got != c.want {
			t.Errorf("PlaneID(%#x, sub0) = %d, want %d", c.row, got, c.want)
		}
	}
}

func TestPlaneIDLowBits(t *testing.T) {
	// EWLR alone (Fig. 9 #2): plane ID at the row LSBs, EWLR offset
	// directly above it.
	p := logic(4, true, false, config.PlaneBitsLow)
	if got := p.PlaneID(0b00, 0); got != 0 {
		t.Errorf("row 0 plane = %d", got)
	}
	if got := p.PlaneID(0b01, 0); got != 1 {
		t.Errorf("row 1 plane = %d, want 1", got)
	}
	if got := p.PlaneID(0b10, 0); got != 2 {
		t.Errorf("row 2 plane = %d, want 2", got)
	}
	if got := p.PlaneID(0b100, 0); got != 0 {
		t.Errorf("row 4 plane = %d, want 0 (above plane field)", got)
	}
	// The offset field (bits [4:2]) is masked out of the shared latch.
	if p.Latch(0b10100) != 0 {
		t.Errorf("Latch(0b10100) = %#b, want 0", p.Latch(0b10100))
	}
}

// RAP inverts the right sub-bank's plane bits: rows with identical MSBs
// land in complementary planes (Fig. 3d).
func TestRAPInversion(t *testing.T) {
	p := logic(4, false, true, config.PlaneBitsHigh)
	for _, row := range []uint32{0x0000, 0x4321, 0x8888, 0xFFFF} {
		l, r := p.PlaneID(row, 0), p.PlaneID(row, 1)
		if l != ^r&3 {
			t.Errorf("row %#x: left plane %d, right plane %d not complementary", row, l, r)
		}
	}
}

func TestMWLAndLatch(t *testing.T) {
	// EWLR+RAP (Fig. 9 #1): plane = row[15:14], offset = row[13:11];
	// the shared latch masks out the offset field.
	p := logic(4, true, true, config.PlaneBitsHigh)
	if got := p.Latch(0x1238); got != 0x1238&^0x3800 {
		t.Errorf("Latch(0x1238) = %#x, want %#x", got, 0x1238&^0x3800)
	}
	if p.Latch(0x1238) != p.MWL(0x1238) {
		t.Error("MWL and Latch must agree under EWLR")
	}
	noEwlr := logic(4, false, false, config.PlaneBitsHigh)
	if noEwlr.Latch(0x1238) != 0x1238 {
		t.Error("without EWLR the latch holds the full row address")
	}
}

func TestDecideHit(t *testing.T) {
	p := logic(4, true, true, config.PlaneBitsHigh)
	d := p.Decide(0x42, 0, SubState{Active: true, Row: 0x42}, SubState{})
	if d.Action != ActionHit {
		t.Errorf("open target row gave %v", d.Action)
	}
}

func TestDecideActivateIdleBank(t *testing.T) {
	p := logic(4, true, true, config.PlaneBitsHigh)
	d := p.Decide(0x42, 0, SubState{}, SubState{})
	if d.Action != ActionActivate || d.EWLRHit {
		t.Errorf("idle bank gave %+v", d)
	}
}

func TestDecideRowConflictSelf(t *testing.T) {
	p := logic(4, true, true, config.PlaneBitsHigh)
	d := p.Decide(0x42, 0, SubState{Active: true, Row: 0x99}, SubState{})
	if d.Action != ActionPrechargeSelf || d.PlaneConflict {
		t.Errorf("row conflict gave %+v", d)
	}
}

// Plane conflict: sub-bank R idle, sub-bank L (the "other") active in the
// target plane with a different MWL -> L must be precharged (Fig. 3a).
func TestDecidePlaneConflict(t *testing.T) {
	p := logic(4, false, false, config.PlaneBitsHigh)
	// Both rows in plane 0 (top two bits 00), different addresses.
	d := p.Decide(0x0100, 1, SubState{}, SubState{Active: true, Row: 0x0200})
	if d.Action != ActionPrechargeOther || !d.PlaneConflict {
		t.Errorf("plane conflict gave %+v", d)
	}
}

// Different planes: no conflict, both sub-banks coexist (Fig. 3b).
func TestDecideDifferentPlanes(t *testing.T) {
	p := logic(4, false, false, config.PlaneBitsHigh)
	d := p.Decide(0x4100, 1, SubState{}, SubState{Active: true, Row: 0x0200})
	if d.Action != ActionActivate {
		t.Errorf("different planes gave %+v", d)
	}
}

// EWLR hit: same plane, same shared-latch value, rows differ only in the
// 3-bit offset field (Fig. 3c) -> activate without a plane conflict.
// With high plane bits the offset field is row[13:11].
func TestDecideEWLRHit(t *testing.T) {
	p := logic(4, true, false, config.PlaneBitsHigh)
	other := SubState{Active: true, Row: 0x0800} // bit 11 set
	d := p.Decide(0x1000, 1, SubState{}, other)  // differs in bits 11,12
	if d.Action != ActionActivate || !d.EWLRHit {
		t.Errorf("EWLR hit gave %+v", d)
	}
	// A bit below the offset field differs -> latch mismatch -> conflict.
	d = p.Decide(0x0400, 1, SubState{}, other)
	if d.Action != ActionPrechargeOther || !d.PlaneConflict {
		t.Errorf("latch mismatch gave %+v", d)
	}
}

// Without EWLR an exact row match still coexists (the shared latches hold
// one value that serves both sub-banks).
func TestDecideExactMatchWithoutEWLR(t *testing.T) {
	p := logic(4, false, false, config.PlaneBitsHigh)
	d := p.Decide(0x0205, 1, SubState{}, SubState{Active: true, Row: 0x0205})
	if d.Action != ActionActivate || d.EWLRHit {
		t.Errorf("exact match gave %+v", d)
	}
}

// Partial precharge: closing a row while its EWLR partner stays active in
// the other sub-bank must not drop the shared MWL (Sec. VI-A).
func TestDecidePartialPrecharge(t *testing.T) {
	p := logic(4, true, false, config.PlaneBitsHigh)
	self := SubState{Active: true, Row: 0x0800}
	other := SubState{Active: true, Row: 0x1000} // same latch, same plane
	d := p.Decide(0x4000, 0, self, other)
	if d.Action != ActionPrechargeSelf || !d.PartialPrecharge {
		t.Errorf("partial precharge gave %+v", d)
	}
	// Partner in a different EWLR: ordinary precharge.
	other = SubState{Active: true, Row: 0x0400}
	d = p.Decide(0x4000, 0, self, other)
	if d.Action != ActionPrechargeSelf || d.PartialPrecharge {
		t.Errorf("ordinary precharge gave %+v", d)
	}
}

// Property: under RAP the two sub-banks never plane-conflict for rows
// with equal plane-selecting MSBs, whatever those bits are.
func TestRAPAvoidsMSBLocalityConflicts(t *testing.T) {
	p := logic(4, false, true, config.PlaneBitsHigh)
	f := func(a, b uint16) bool {
		// Force identical plane MSBs.
		ra := uint32(a)
		rb := uint32(b)&0x3FFF | uint32(a)&0xC000
		if ra == rb {
			return true
		}
		d := p.Decide(rb, 1, SubState{}, SubState{Active: true, Row: ra})
		return d.Action == ActionActivate
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Decide is symmetric in the sub-bank argument for plane
// conflicts -- if (row, sub=0) conflicts with other sub-bank's row, then
// the mirrored query conflicts too, under any mechanism combination.
func TestDecideSymmetry(t *testing.T) {
	for _, ewlr := range []bool{false, true} {
		for _, rap := range []bool{false, true} {
			p := logic(8, ewlr, rap, config.PlaneBitsHigh)
			f := func(a, b uint16) bool {
				ra, rb := uint32(a), uint32(b)
				d0 := p.Decide(ra, 0, SubState{}, SubState{Active: true, Row: rb})
				d1 := p.Decide(rb, 1, SubState{}, SubState{Active: true, Row: ra})
				return (d0.Action == ActionPrechargeOther) == (d1.Action == ActionPrechargeOther)
			}
			if err := quick.Check(f, nil); err != nil {
				t.Errorf("ewlr=%v rap=%v: %v", ewlr, rap, err)
			}
		}
	}
}

// With a single plane and no EWLR (degenerate Half-DRAM-like case) any
// two distinct rows conflict.
func TestSinglePlaneAlwaysConflicts(t *testing.T) {
	sch := config.Scheme{Name: "t", Mode: config.SubBankHalfDRAM, Planes: 1, PlaneBits: config.PlaneBitsHigh}
	p := NewPlaneLogic(sch, rowBits)
	d := p.Decide(1, 0, SubState{}, SubState{Active: true, Row: 2})
	if d.Action != ActionPrechargeOther {
		t.Errorf("single plane distinct rows gave %+v", d)
	}
}

func TestNewPlaneLogicPanicsWithoutPlanes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for plane-less scheme")
		}
	}()
	NewPlaneLogic(config.Scheme{Mode: config.SubBankNone}, rowBits)
}

func TestActionString(t *testing.T) {
	for a, want := range map[Action]string{
		ActionHit:            "hit",
		ActionActivate:       "activate",
		ActionPrechargeSelf:  "precharge-self",
		ActionPrechargeOther: "precharge-other",
	} {
		if a.String() != want {
			t.Errorf("Action %d String = %q, want %q", int(a), a.String(), want)
		}
	}
}

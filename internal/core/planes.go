// Package core implements the ERUCA mechanisms that are the paper's
// contribution:
//
//   - plane bookkeeping for vertical sub-banks (VSB), paired banks and
//     Half-DRAM: which row-address latch set each active row occupies and
//     when two sub-banks conflict on one (Sec. IV, Fig. 3);
//   - EWLR, the effective wordline range: per-sub-bank LWL_SEL latches
//     that let both sub-banks stay active in one plane when their rows
//     share the MWL address (Fig. 6);
//   - RAP, row address permutation: per-sub-bank inversion of the
//     plane-ID bits (Fig. 3d);
//   - the Fig. 5 activation decision flow (Decide);
//   - the DDB two-command windows tTCW and tTWTRW (Sec. VI-B, Fig. 10);
//   - MASA subarray-slot selection for the prior-work comparison.
//
// The package is pure logic over row addresses and timestamps; the DRAM
// timing engine (internal/dram) owns the clocks and state machines and
// consults this package for every activation decision.
package core

import (
	"fmt"

	"eruca/internal/config"
	"eruca/internal/diag"
)

// PlaneLogic derives plane IDs, latch (MWL) addresses and EWLR hits
// from row addresses under one scheme, following the Fig. 9 address
// mappings:
//
//   - with RAP (or naive VSB), the plane ID is the row MSBs and the EWLR
//     offset sits directly below it — RAP changes the MSBs, so
//     randomizing the next bits down is what pays (Fig. 9 #1);
//   - with EWLR alone, the plane ID is the row LSBs (they change most
//     often) and the EWLR offset sits directly above it (Fig. 9 #2).
//
// The DRAM exposes which physical address bits feed the LWL_SEL latches,
// so the controller is free to place the offset field (Sec. IV).
// PlaneLogic is immutable and safe for concurrent use.
type PlaneLogic struct {
	planes    int
	planeBits int
	ewlr      bool
	ewlrBits  int
	rap       bool
	rowBits   int
	high      bool

	planeShift uint
	offsetMask uint32 // EWLR offset field, in place; 0 when EWLR is off
	planeMask  uint32 // plane-ID field, in place
}

// NewPlaneLogic builds the plane logic for a system. It panics if the
// scheme has no planes; call only when Scheme.HasPlanes().
func NewPlaneLogic(sch config.Scheme, rowBits int) *PlaneLogic {
	if !sch.HasPlanes() {
		diag.Invariantf("core: NewPlaneLogic on a scheme without planes")
	}
	p := &PlaneLogic{
		planes:   sch.Planes,
		ewlr:     sch.EWLR,
		ewlrBits: sch.EWLRBits,
		rap:      sch.RAP,
		rowBits:  rowBits,
		high:     sch.PlaneBits == config.PlaneBitsHigh,
	}
	for n := sch.Planes; n > 1; n >>= 1 {
		p.planeBits++
	}
	if p.high {
		p.planeShift = uint(rowBits - p.planeBits)
		if p.ewlr {
			off := int(p.planeShift) - p.ewlrBits
			if off < 0 {
				off = 0
			}
			p.offsetMask = (1<<uint(p.ewlrBits) - 1) << uint(off)
		}
	} else {
		p.planeShift = 0
		if p.ewlr {
			p.offsetMask = (1<<uint(p.ewlrBits) - 1) << uint(p.planeBits)
		}
	}
	p.planeMask = uint32(p.planes-1) << p.planeShift
	return p
}

// Planes reports the plane count.
func (p *PlaneLogic) Planes() int { return p.planes }

// EWLR reports whether the effective-wordline-range mechanism is on.
func (p *PlaneLogic) EWLR() bool { return p.ewlr }

// PlaneID returns the row-address latch set the row occupies in the
// given sub-bank. With RAP, the right sub-bank's plane bits are
// bit-inverted (Fig. 3d) so that equal row MSBs in the two sub-banks land
// in different planes.
func (p *PlaneLogic) PlaneID(row uint32, sub int) int {
	if p.planes == 1 {
		return 0
	}
	id := row >> p.planeShift & uint32(p.planes-1)
	if p.rap && sub == 1 {
		id = ^id & uint32(p.planes-1)
	}
	return int(id)
}

// Latch returns the value a plane's shared row-address latches hold for
// an active row: the row's position *within its plane*. The plane-ID
// field is excluded — it selects which latch set, and RAP physically
// remaps address MSBs to planes per sub-bank (Fig. 3d), so two rows in
// one plane compare by their within-plane position. With EWLR the
// per-sub-bank LWL_SEL latches additionally absorb the offset field.
func (p *PlaneLogic) Latch(row uint32) uint32 {
	return row &^ p.offsetMask &^ p.planeMask
}

// MWL returns the main-wordline (shared-latch) address of a row; rows
// with equal MWL differ only within the EWLR offset field.
func (p *PlaneLogic) MWL(row uint32) uint32 { return p.Latch(row) }

// Action is what the controller must do before (or instead of)
// activating a target row, per the Fig. 5 flow.
type Action int

const (
	// ActionHit: the target row is already active in its sub-bank; issue
	// the column command directly.
	ActionHit Action = iota
	// ActionActivate: the target sub-bank is idle and the plane latches
	// are free (or match under EWLR); issue ACT.
	ActionActivate
	// ActionPrechargeSelf: the target sub-bank holds a different row;
	// precharge it first (an ordinary row-buffer conflict).
	ActionPrechargeSelf
	// ActionPrechargeOther: the paired sub-bank holds a row whose plane
	// latches the target needs — a plane conflict; precharge the paired
	// sub-bank first.
	ActionPrechargeOther
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ActionHit:
		return "hit"
	case ActionActivate:
		return "activate"
	case ActionPrechargeSelf:
		return "precharge-self"
	case ActionPrechargeOther:
		return "precharge-other"
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// Decision is the outcome of one Fig. 5 evaluation.
type Decision struct {
	Action Action
	// EWLRHit is set on ActionActivate when the paired sub-bank already
	// holds the target plane's latches with a matching MWL: the ACT can
	// reuse the driven MWL, avoiding the plane conflict and saving 18%
	// of Vpp activation power.
	EWLRHit bool
	// PlaneConflict is set when the (eventual) activation required
	// precharging the paired sub-bank — the metric of Fig. 13b. It is
	// reported on ActionPrechargeOther.
	PlaneConflict bool
	// PartialPrecharge is set on ActionPrechargeSelf when both sub-banks
	// hold rows within the same EWLR: the precharge must not deactivate
	// the shared MWL (Sec. VI-A "partial precharge").
	PartialPrecharge bool
	// RAPRedirect is set on ActionActivate when the two rows' raw plane
	// bits collide but RAP's per-sub-bank inversion (Fig. 3d) sent them
	// to different latch sets — the activation would have been a plane
	// conflict without RAP. This is the attribution counter behind the
	// Fig. 13b delta between the +RAP and -RAP configurations.
	RAPRedirect bool
}

// SubState is the view of one sub-bank Decide needs.
type SubState struct {
	Active bool
	Row    uint32
}

// Decide implements the Fig. 5 operation flow for a target row in
// sub-bank `sub`, given the current state of both sub-banks of the
// physical bank.
func (p *PlaneLogic) Decide(row uint32, sub int, self, other SubState) Decision {
	if self.Active && self.Row == row {
		return Decision{Action: ActionHit}
	}
	if self.Active {
		// Ordinary row-buffer conflict within the target sub-bank. If
		// the paired sub-bank holds a row in the same EWLR as the row we
		// are closing, the precharge must leave the MWL driven.
		d := Decision{Action: ActionPrechargeSelf}
		if p.ewlr && other.Active &&
			p.PlaneID(self.Row, sub) == p.PlaneID(other.Row, 1-sub) &&
			p.MWL(self.Row) == p.MWL(other.Row) {
			d.PartialPrecharge = true
		}
		return d
	}
	// Target sub-bank is idle: can we take the plane latches?
	if !other.Active {
		return Decision{Action: ActionActivate}
	}
	planeSelf := p.PlaneID(row, sub)
	planeOther := p.PlaneID(other.Row, 1-sub)
	if planeSelf != planeOther {
		return Decision{Action: ActionActivate, RAPRedirect: p.rapRedirected(row, other.Row)}
	}
	// Same plane: shared latches. An exact latch match lets both
	// sub-banks coexist; under EWLR that is an MWL match (an EWLR hit),
	// without EWLR it requires the identical full row address.
	if p.Latch(row) == p.Latch(other.Row) {
		return Decision{Action: ActionActivate, EWLRHit: p.ewlr}
	}
	return Decision{Action: ActionPrechargeOther, PlaneConflict: true}
}

// rapRedirected reports whether RAP is the reason two rows land in
// different planes: their raw (un-inverted) plane bits are equal, so a
// scheme without RAP would have seen a latch collision.
func (p *PlaneLogic) rapRedirected(row, otherRow uint32) bool {
	if !p.rap || p.planes == 1 {
		return false
	}
	raw := func(r uint32) uint32 { return r >> p.planeShift & uint32(p.planes-1) }
	return raw(row) == raw(otherRow)
}

package core

import (
	"eruca/internal/clock"
	"eruca/internal/snapshot"
)

// Snapshot serializes the window's mutable command history (the
// configuration — enabled/tcw/twtrw — is rebuilt from the system
// config on restore and is deliberately not stored).
func (w *DDBWindow) Snapshot(e *snapshot.Encoder) {
	e.I64(int64(w.lastRd[0]))
	e.I64(int64(w.lastRd[1]))
	e.I64(int64(w.lastWr[0]))
	e.I64(int64(w.lastWr[1]))
}

// Restore rewinds the window's command history from a Snapshot stream.
func (w *DDBWindow) Restore(d *snapshot.Decoder) {
	w.lastRd[0] = clock.Cycle(d.I64())
	w.lastRd[1] = clock.Cycle(d.I64())
	w.lastWr[0] = clock.Cycle(d.I64())
	w.lastWr[1] = clock.Cycle(d.I64())
}

package core

import (
	"testing"

	"eruca/internal/clock"
)

func TestDDBWindowDisabled(t *testing.T) {
	w := NewDDBWindow(false, 12, 30)
	w.Record(100, true)
	w.Record(101, true)
	if e := w.EarliestColumn(true); e != 0 {
		t.Errorf("disabled window constrains: %d", e)
	}
}

// Fig. 10a: two reads may be back-to-back; the third waits tTCW from the
// first.
func TestTCWThirdCommandBlocked(t *testing.T) {
	w := NewDDBWindow(true, 12, 30)
	if e := w.EarliestColumn(true); e > 0 {
		t.Fatalf("first read constrained: %d", e)
	}
	w.Record(100, true)
	if e := w.EarliestColumn(true); e > 100 {
		t.Fatalf("second read constrained: %d", e)
	}
	w.Record(104, true)
	if e := w.EarliestColumn(true); e != 100+12 {
		t.Errorf("third read earliest = %d, want 112 (first + tTCW)", e)
	}
	w.Record(112, true)
	if e := w.EarliestColumn(true); e != 104+12 {
		t.Errorf("fourth read earliest = %d, want 116", e)
	}
}

// Reads and writes are tracked separately (Sec. VI-B: the controller
// keeps two tTCW constraints because data occupies the bus at different
// offsets for reads and writes).
func TestTCWSeparateDirections(t *testing.T) {
	w := NewDDBWindow(true, 12, 30)
	w.Record(100, true)
	w.Record(101, true)
	if e := w.EarliestColumn(false); e > 101 {
		t.Errorf("write constrained by read window: %d", e)
	}
}

// Fig. 10c: a read after two successive writes waits tTWTRW from the
// first write of the pair.
func TestTWTRW(t *testing.T) {
	w := NewDDBWindow(true, 12, 30)
	w.Record(200, false)
	w.Record(203, false)
	if e := w.EarliestColumn(true); e != 200+30 {
		t.Errorf("read after write pair earliest = %d, want 230", e)
	}
	// Writes far apart: the bound is stale and does not bind.
	w2 := NewDDBWindow(true, 12, 30)
	w2.Record(100, false)
	w2.Record(500, false)
	if e := w2.EarliestColumn(true); e > 130 {
		t.Errorf("distant writes still constrain read: %d", e)
	}
}

func TestMASASlots(t *testing.T) {
	s := NewMASASlots(8, 17)
	if got := s.Slot(0); got != 0 {
		t.Errorf("slot(0) = %d", got)
	}
	// Subarray-interleaved row mapping: consecutive rows alternate
	// groups.
	if got := s.Slot(1); got != 1 {
		t.Errorf("slot(1) = %d, want 1", got)
	}
	if got := s.Slot(7); got != 7 {
		t.Errorf("slot(7) = %d, want 7", got)
	}
	if got := s.Slot(8); got != 0 {
		t.Errorf("slot(8) = %d, want 0 (wraps)", got)
	}
	s4 := NewMASASlots(4, 16)
	if got := s4.Slot(0xC003); got != 3 {
		t.Errorf("4-group slot(0xC003) = %d, want 3", got)
	}
}

func TestDDBWindowZeroValue(t *testing.T) {
	var w DDBWindow
	if e := w.EarliestColumn(true); e != 0 {
		t.Errorf("zero value constrains: %d", e)
	}
	w.Record(5, true) // must not panic
}

func TestTCWLongIdleDoesNotBlock(t *testing.T) {
	w := NewDDBWindow(true, 12, 30)
	w.Record(100, true)
	w.Record(101, true)
	var now clock.Cycle = 10000
	if e := w.EarliestColumn(true); e > now {
		t.Errorf("stale window blocks at %d", e)
	}
}

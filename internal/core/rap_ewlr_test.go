package core

import (
	"testing"
	"testing/quick"

	"eruca/internal/config"
)

// With RAP, the same physical plane is reached by address MSBs m from
// the left sub-bank and ~m from the right; rows whose within-plane
// positions match coexist even without EWLR (the shared latch holds one
// value that serves both).
func TestRAPCrossPlaneCoexistence(t *testing.T) {
	p := logic(4, false, true, config.PlaneBitsHigh)
	// Left holds MSB=00 row; right's MSB=11 maps to plane ~3 = 0.
	left := SubState{Active: true, Row: 0x0123}
	rightRow := uint32(0xC123) // same within-plane bits, complementary MSBs
	if p.PlaneID(left.Row, 0) != p.PlaneID(rightRow, 1) {
		t.Fatal("setup: rows not in the same physical plane")
	}
	d := p.Decide(rightRow, 1, SubState{}, left)
	if d.Action != ActionActivate {
		t.Errorf("matching within-plane rows conflicted: %+v", d)
	}
	// Different within-plane position: conflict.
	d = p.Decide(0xC124, 1, SubState{}, left)
	if d.Action != ActionPrechargeOther {
		t.Errorf("mismatched within-plane rows coexisted: %+v", d)
	}
}

// With EWLR+RAP combined, the EWLR offset field (just below the plane
// MSBs) absorbs differences, enabling cross-plane EWLR hits.
func TestEWLRRAPCombinedHit(t *testing.T) {
	p := logic(4, true, true, config.PlaneBitsHigh)
	left := SubState{Active: true, Row: 0x0123} // plane 0 via sub 0
	// Right sub-bank: complementary MSBs land in plane 0; offset bits
	// [13:11] differ; everything else matches.
	rightRow := uint32(0xC123) | 1<<12
	if p.PlaneID(left.Row, 0) != p.PlaneID(rightRow, 1) {
		t.Fatal("setup: rows not in the same physical plane")
	}
	d := p.Decide(rightRow, 1, SubState{}, left)
	if d.Action != ActionActivate || !d.EWLRHit {
		t.Errorf("combined-mapping EWLR hit gave %+v", d)
	}
}

// Property: Decide never reports an EWLR hit when EWLR is disabled.
func TestNoEWLRHitWhenDisabled(t *testing.T) {
	for _, rap := range []bool{false, true} {
		p := logic(4, false, rap, config.PlaneBitsHigh)
		f := func(a, b uint16, sub bool) bool {
			s := 0
			if sub {
				s = 1
			}
			d := p.Decide(uint32(a), s, SubState{}, SubState{Active: true, Row: uint32(b)})
			return !d.EWLRHit
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("rap=%v: %v", rap, err)
		}
	}
}

// Property: an EWLR hit implies no plane conflict, and vice versa a
// plane conflict implies no hit.
func TestHitAndConflictExclusive(t *testing.T) {
	p := logic(8, true, true, config.PlaneBitsHigh)
	f := func(a, b uint16) bool {
		d := p.Decide(uint32(a), 0, SubState{}, SubState{Active: true, Row: uint32(b)})
		return !(d.EWLRHit && d.PlaneConflict)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Decide on an idle bank (both sub-banks empty) is always a
// plain activation for every mechanism combination and plane count.
func TestIdleBankAlwaysActivates(t *testing.T) {
	for _, planes := range []int{1, 2, 4, 16} {
		for _, ewlr := range []bool{false, true} {
			sch := config.Scheme{
				Name: "t", Mode: config.SubBankVSB, Planes: planes,
				PlaneBits: config.PlaneBitsHigh, EWLR: ewlr, EWLRBits: 3,
			}
			p := NewPlaneLogic(sch, rowBits)
			f := func(r uint16, sub bool) bool {
				s := 0
				if sub {
					s = 1
				}
				d := p.Decide(uint32(r), s, SubState{}, SubState{})
				return d.Action == ActionActivate && !d.EWLRHit && !d.PlaneConflict
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Errorf("planes=%d ewlr=%v: %v", planes, ewlr, err)
			}
		}
	}
}

// PlaneID stays within range for every configuration.
func TestPlaneIDRange(t *testing.T) {
	for _, planes := range []int{2, 4, 8, 16} {
		for _, rap := range []bool{false, true} {
			for _, mode := range []config.PlaneBitsMode{config.PlaneBitsLow, config.PlaneBitsHigh} {
				p := logic(planes, true, rap, mode)
				f := func(r uint16, sub bool) bool {
					s := 0
					if sub {
						s = 1
					}
					id := p.PlaneID(uint32(r), s)
					return id >= 0 && id < planes
				}
				if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
					t.Errorf("planes=%d rap=%v mode=%v: %v", planes, rap, mode, err)
				}
			}
		}
	}
}

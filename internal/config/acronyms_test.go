package config

import "testing"

func TestAcronyms(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Acronyms() {
		if a.Name == "" || a.Description == "" {
			t.Errorf("empty acronym entry %+v", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate acronym %s", a.Name)
		}
		seen[a.Name] = true
	}
	for _, want := range []string{"MWL", "LWL SEL", "GBL", "VSB", "EWLR", "RAP", "DDB"} {
		if !seen[want] {
			t.Errorf("missing acronym %s", want)
		}
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	for _, name := range RegistryNames() {
		sys, err := ByName(name, 0, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sys.Name == "" {
			t.Errorf("%s: empty system name", name)
		}
		if err := sys.Scheme.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := ByName("nonsense", 0, 0); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestRegistryPlaneAndBusOverrides(t *testing.T) {
	sys, err := ByName("vsb-ewlr-rap-ddb", 8, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Scheme.Planes != 8 {
		t.Errorf("planes = %d", sys.Scheme.Planes)
	}
	if mhz := sys.Bus.FreqMHz(); mhz < 1990 || mhz > 2010 {
		t.Errorf("bus = %v", mhz)
	}
}

func TestSubBankModeString(t *testing.T) {
	for m, want := range map[SubBankMode]string{
		SubBankNone: "none", SubBankVSB: "vsb", SubBankPaired: "paired",
		SubBankHalfDRAM: "halfdram", SubBankMASA: "masa",
	} {
		if m.String() != want {
			t.Errorf("%d = %q", int(m), m.String())
		}
	}
	if PlaneBitsLow.String() != "low" || PlaneBitsHigh.String() != "high" {
		t.Error("PlaneBitsMode strings")
	}
}

// Package config defines the configuration space of the ERUCA simulator:
// DRAM geometry, timing parameters, the sub-banking scheme knobs that
// form the paper's design space (VSB, planes, EWLR, RAP, DDB, paired-bank,
// MASA, Half-DRAM), memory-controller policies, and the CPU-side
// parameters of Tab. III. Presets for every configuration evaluated in
// the paper live in presets.go.
package config

import (
	"fmt"

	"eruca/internal/clock"
	"eruca/internal/diag"
)

// SubBankMode selects the sub-banking organization of a physical bank.
type SubBankMode int

const (
	// SubBankNone is a stock DDR4 bank: one row buffer, no sub-banks.
	SubBankNone SubBankMode = iota
	// SubBankVSB splits each bank into two vertical sub-banks (the left
	// and right half pages of an x4 Combo DRAM chip), each with its own
	// column path. Sub-banks share per-plane row-address latches.
	SubBankVSB
	// SubBankPaired merges two adjacent banks into one paired bank that
	// shares a single row decoder; the two constituent banks act as the
	// two sub-banks. Saves area (Sec. IV, Fig. 3e) at the cost of plane
	// conflicts.
	SubBankPaired
	// SubBankHalfDRAM models Half-DRAM [Zhang et al., ISCA'14]: two
	// wordline-direction sub-banks whose row-address latches are shared,
	// equivalent to a naive 2-plane VSB without EWLR or RAP.
	SubBankHalfDRAM
	// SubBankMASA models MASA, the highest-performing SALP scheme
	// [Kim et al., ISCA'12]: each bank holds several subarray groups,
	// each with its own row buffer; switching the subarray selected for
	// column access costs an extra tSA.
	SubBankMASA
)

// String implements fmt.Stringer.
func (m SubBankMode) String() string {
	switch m {
	case SubBankNone:
		return "none"
	case SubBankVSB:
		return "vsb"
	case SubBankPaired:
		return "paired"
	case SubBankHalfDRAM:
		return "halfdram"
	case SubBankMASA:
		return "masa"
	}
	return fmt.Sprintf("SubBankMode(%d)", int(m))
}

// PlaneBitsMode selects which row-address bits index the per-plane
// row-address latch sets (Fig. 9).
type PlaneBitsMode int

const (
	// PlaneBitsLow uses the row-address LSBs just above the EWLR offset
	// (Fig. 9 mapping #2: EWLR alone). Low bits change frequently, so
	// each sub-bank is likely to hit different planes.
	PlaneBitsLow PlaneBitsMode = iota
	// PlaneBitsHigh uses the row-address MSBs (Fig. 9 mapping #1: EWLR
	// combined with RAP). RAP inverts these bits per sub-bank, and EWLR
	// covers the spatial locality left in the low bits.
	PlaneBitsHigh
)

// String implements fmt.Stringer.
func (m PlaneBitsMode) String() string {
	if m == PlaneBitsLow {
		return "low"
	}
	return "high"
}

// Scheme describes one point in the ERUCA design space. The zero value
// is stock DDR4 with bank groups.
type Scheme struct {
	Name string

	Mode SubBankMode

	// Planes is the number of row-address latch sets per physical bank
	// (per sub-bank pair). Meaningful for VSB, paired-bank and
	// Half-DRAM. Must be a power of two >= 1.
	Planes int

	// PlaneBits selects which row bits form the plane ID.
	PlaneBits PlaneBitsMode

	// EWLR enables per-sub-bank LWL_SEL latches: both sub-banks may hold
	// different rows in the same plane when the rows share their MWL
	// address (all row bits equal except the EWLRBits LSBs).
	EWLR bool

	// EWLRBits is the width of the EWLR offset (the LWL_SEL field).
	// DDR4 has 8 local wordlines per MWL, so the paper uses 3.
	EWLRBits int

	// RAP inverts the plane-ID bits of the right sub-bank so that
	// accesses with identical row MSBs map to different planes in
	// different sub-banks.
	RAP bool

	// DDB enables the dual data bus: two chip-global buses per bank
	// group, governed by the tTCW / tTWTRW two-command windows instead
	// of the bank-group tCCD_L / tWTR_L penalties.
	DDB bool

	// DDBGroupPairs is the non-Combo DDB variant of Sec. V ("Application
	// to other DRAM types"): instead of reusing the x4-idle second bus
	// within each group, switches connect the buses of vertically
	// adjacent bank groups (0-2 and 1-3), so each group PAIR shares two
	// buses under one two-command window. Requires DDB.
	DDBGroupPairs bool

	// BankGrouping enforces the DDR4 bank-group timing penalties
	// (tCCD_L, tWTR_L within a group). The idealized configuration of
	// Fig. 12 turns this off.
	BankGrouping bool

	// MASAGroups is the number of subarray groups per bank when Mode is
	// SubBankMASA.
	MASAGroups int

	// MASAStacked composes MASA with VSB (the MASA8+ERUCA configuration
	// of Fig. 15): each of the two VSB sub-banks carries MASAGroups
	// subarray row buffers, and EWLR+RAP manage the shared latches.
	MASAStacked bool

	// SubHashDisabled turns off the XOR folding of row bits into the
	// sub-bank select (ablation: a plain dedicated bit).
	SubHashDisabled bool
}

// SubBanksPerBank reports how many independently activatable sub-banks a
// physical bank contributes under this scheme (1 for stock DDR4 and for
// pure MASA, 2 for VSB/paired/Half-DRAM).
func (s Scheme) SubBanksPerBank() int {
	switch s.Mode {
	case SubBankVSB, SubBankPaired, SubBankHalfDRAM:
		return 2
	case SubBankMASA:
		if s.MASAStacked {
			return 2
		}
		return 1
	default:
		return 1
	}
}

// HasPlanes reports whether the scheme uses shared per-plane row-address
// latches (and can therefore suffer plane conflicts).
func (s Scheme) HasPlanes() bool {
	return s.SubBanksPerBank() > 1
}

// Validate checks internal consistency.
func (s Scheme) Validate() error {
	if s.HasPlanes() {
		if s.Planes < 1 || s.Planes&(s.Planes-1) != 0 {
			return fmt.Errorf("config: scheme %q: plane count %d is not a power of two >= 1", s.Name, s.Planes)
		}
	}
	if s.EWLR && (s.EWLRBits < 1 || s.EWLRBits > 6) {
		return fmt.Errorf("config: scheme %q: EWLR offset width %d out of range [1,6]", s.Name, s.EWLRBits)
	}
	if s.Mode == SubBankMASA {
		if s.MASAGroups < 2 || s.MASAGroups&(s.MASAGroups-1) != 0 {
			return fmt.Errorf("config: scheme %q: MASA group count %d is not a power of two >= 2", s.Name, s.MASAGroups)
		}
	}
	if s.DDBGroupPairs && !s.DDB {
		return fmt.Errorf("config: scheme %q: DDBGroupPairs requires DDB", s.Name)
	}
	return nil
}

// Timing holds DDR4 timing parameters. Fields suffixed NS are in
// nanoseconds and are converted to bus cycles when a System is built;
// fields suffixed CK are specified directly in bus clocks, matching how
// Tab. III of the paper expresses them.
type Timing struct {
	TCLns  float64 // CAS latency (read command to first data)
	TCWLns float64 // CAS write latency
	TRCDns float64 // ACT to column command
	TRPns  float64 // PRE to ACT
	TRASns float64 // ACT to PRE
	TRTPns float64 // read to PRE
	TWRns  float64 // end of write burst to PRE

	TCCDSck int     // column-to-column, different bank groups (4 CLKs)
	TCCDLns float64 // column-to-column, same bank group (one DRAM core clock, 5ns)
	TWTRSns float64 // write burst end to read, different bank groups
	TWTRLns float64 // write burst end to read, same bank group

	TRRDck int     // ACT to ACT, same rank (paper: single tRRD of 4 CLKs)
	TFAWns float64 // four-activation window

	TRTWck int // read command to write command, same channel (bus turnaround)

	TREFIns float64 // refresh interval
	TRFCns  float64 // refresh cycle time

	TTCWns  float64 // DDB two-column window (one DRAM core clock)
	TSAns   float64 // MASA subarray-select switch penalty
	BurstCK int     // data burst length in bus clocks (BL8 on DDR = 4)
	CoreNS  float64 // DRAM internal core clock period (5ns = 200MHz)
}

// DDR4Timing returns the DDR4 timing set of Tab. III. The CAS/RCD/RP
// latencies are "18-18-18" at a 1333MHz bus (0.75ns tCK), i.e. 13.5ns
// each, and stay fixed in nanoseconds when the bus frequency is swept
// (Fig. 14): the DRAM core does not get faster.
func DDR4Timing() Timing {
	return Timing{
		TCLns:  13.5,
		TCWLns: 9.0,
		TRCDns: 13.5,
		TRPns:  13.5,
		TRASns: 32.0,
		TRTPns: 7.5,
		TWRns:  15.0,

		TCCDSck: 4,
		TCCDLns: 5.0,
		TWTRSns: 2.5,
		TWTRLns: 7.5,

		TRRDck: 4,
		TFAWns: 25.0,

		TRTWck: 2,

		TREFIns: 7800,
		TRFCns:  350,

		TTCWns:  5.0,
		TSAns:   1.5, // MASA subarray-select switch (SALP reports ~1.4ns)
		BurstCK: 4,
		CoreNS:  5.0,
	}
}

// CycleTiming is Timing resolved to bus cycles for one bus frequency.
type CycleTiming struct {
	CL, CWL             clock.Cycle
	RCD, RP, RAS, RC    clock.Cycle
	RTP, WR             clock.Cycle
	CCDS, CCDL          clock.Cycle
	WTRS, WTRL          clock.Cycle
	RRD, FAW            clock.Cycle
	RTW                 clock.Cycle
	REFI, RFC           clock.Cycle
	TCW, TWTRW          clock.Cycle
	SA                  clock.Cycle
	Burst               clock.Cycle
	CoreCK              clock.Cycle // DRAM core clock period in bus cycles
	TwoCommandWindowsOn bool        // whether tTCW/tTWTRW need enforcing (core clock > 2 bursts)
}

// Resolve converts the nanosecond timing set to cycles of the given bus
// domain. tTWTRW is derived as WL + 4 CLKs + tWTR_L per Fig. 10c.
func (t Timing) Resolve(bus clock.Domain) CycleTiming {
	ct := CycleTiming{
		CL:    bus.CyclesCeil(t.TCLns),
		CWL:   bus.CyclesCeil(t.TCWLns),
		RCD:   bus.CyclesCeil(t.TRCDns),
		RP:    bus.CyclesCeil(t.TRPns),
		RAS:   bus.CyclesCeil(t.TRASns),
		RTP:   bus.CyclesCeil(t.TRTPns),
		WR:    bus.CyclesCeil(t.TWRns),
		CCDS:  clock.Cycle(t.TCCDSck),
		CCDL:  bus.CyclesCeil(t.TCCDLns),
		WTRS:  bus.CyclesCeil(t.TWTRSns),
		WTRL:  bus.CyclesCeil(t.TWTRLns),
		RRD:   clock.Cycle(t.TRRDck),
		FAW:   bus.CyclesCeil(t.TFAWns),
		RTW:   clock.Cycle(t.TRTWck),
		REFI:  bus.CyclesCeil(t.TREFIns),
		RFC:   bus.CyclesCeil(t.TRFCns),
		TCW:   bus.CyclesCeil(t.TTCWns),
		SA:    bus.CyclesCeil(t.TSAns),
		Burst: clock.Cycle(t.BurstCK),
	}
	ct.RC = ct.RAS + ct.RP
	ct.CoreCK = bus.CyclesCeil(t.CoreNS)
	ct.TWTRW = ct.CWL + 4 + ct.WTRL
	// The two-command windows only bind when one DRAM core clock is
	// longer than two external data bursts (Sec. VI-B): below that, the
	// bus can never out-pace the array.
	ct.TwoCommandWindowsOn = ct.CoreCK > 2*ct.Burst
	return ct
}

// Geometry describes the memory-system shape of Tab. III: 2 channels x 1
// rank of 8Gb x4 DDR4 chips, 16 banks in 4 bank groups, 8KiB rank-level
// rows.
type Geometry struct {
	Channels      int
	Ranks         int
	BankGroups    int
	BanksPerGroup int
	// RowBits is the per-bank row-address width covering the full bank,
	// including the bit that VSB repurposes as the sub-bank select
	// (2^17 rows of 8KiB = 1GiB per bank for an 8Gb x4 rank of 16 chips).
	RowBits int
	// ColBits is log2(cache lines per row): an 8KiB row holds 128 lines.
	ColBits int
	// LineBytes is the cache-line (memory transaction) size.
	LineBytes int
}

// DefaultGeometry returns the Tab. III memory system.
func DefaultGeometry() Geometry {
	return Geometry{
		Channels:      2,
		Ranks:         1,
		BankGroups:    4,
		BanksPerGroup: 4,
		RowBits:       17,
		ColBits:       7,
		LineBytes:     64,
	}
}

// Banks reports banks per rank.
func (g Geometry) Banks() int { return g.BankGroups * g.BanksPerGroup }

// RowBytes reports the rank-level row (page) size in bytes.
func (g Geometry) RowBytes() int { return (1 << g.ColBits) * g.LineBytes }

// BankBytes reports per-bank capacity in bytes.
func (g Geometry) BankBytes() uint64 {
	return uint64(g.RowBytes()) << uint(g.RowBits)
}

// TotalBytes reports total physical capacity across channels and ranks.
func (g Geometry) TotalBytes() uint64 {
	return g.BankBytes() * uint64(g.Banks()*g.Ranks*g.Channels)
}

// AddrBits reports the number of physical-address bits the geometry spans.
func (g Geometry) AddrBits() int {
	b := 0
	for n := g.TotalBytes(); n > 1; n >>= 1 {
		b++
	}
	return b
}

// Controller holds memory-controller policy parameters.
type Controller struct {
	ReadQueueDepth  int
	WriteQueueDepth int
	// WriteDrainHi/Lo are the write-drain watermarks: when the write
	// queue reaches Hi the controller switches to draining writes until
	// it falls to Lo.
	WriteDrainHi int
	WriteDrainLo int
	// ScanLimit bounds how many queued transactions FR-FCFS examines per
	// cycle, oldest first.
	ScanLimit int
	// ClosePageIdleCK closes an open row after this many idle bus cycles
	// with no queued request to it (the "adaptive open page" policy of
	// Tab. III). Zero keeps rows open until a conflict.
	ClosePageIdleCK int
	// RefreshEnabled turns on tREFI/tRFC refresh scheduling.
	RefreshEnabled bool
	// HitFirstDisabled drops the row-hit-first pass, degrading FR-FCFS
	// to plain FCFS (ablation).
	HitFirstDisabled bool
}

// DefaultController returns the controller policy used throughout the
// evaluation.
func DefaultController() Controller {
	return Controller{
		ReadQueueDepth:  64,
		WriteQueueDepth: 64,
		WriteDrainHi:    40,
		WriteDrainLo:    16,
		ScanLimit:       32,
		ClosePageIdleCK: 1200,
		RefreshEnabled:  true,
	}
}

// CPU holds the processor-side parameters of Tab. III.
type CPU struct {
	Cores           int
	Width           int // fetch/issue/retire width
	ROB             int
	LSQ             int
	L1Bytes         int
	L1Ways          int
	L1LatencyCK     int // CPU cycles
	LLCBytesPerCore int
	LLCWays         int
	LLCLatencyCK    int
	// ClockRatio is CPU cycles per bus cycle. The paper runs a 4GHz CPU
	// against a 1.33GHz bus and scales the CPU with the bus in Fig. 14,
	// keeping the ratio at 3.
	ClockRatio int
}

// DefaultCPU returns the Tab. III processor: 4-core OoO x86 at 4GHz,
// width 8, LSQ 32, ROB 192, 32KiB L1D, 1MiB LLC per core.
func DefaultCPU() CPU {
	return CPU{
		Cores:           4,
		Width:           8,
		ROB:             192,
		LSQ:             32,
		L1Bytes:         32 << 10,
		L1Ways:          8,
		L1LatencyCK:     4,
		LLCBytesPerCore: 1 << 20,
		LLCWays:         16,
		LLCLatencyCK:    30,
		ClockRatio:      3,
	}
}

// System is a fully resolved simulator configuration.
type System struct {
	Name   string
	Geom   Geometry
	Scheme Scheme
	Timing Timing
	Bus    clock.Domain
	CT     CycleTiming
	Ctrl   Controller
	CPU    CPU
}

// NewSystem assembles and validates a System for the given bus frequency
// in MHz.
func NewSystem(name string, geom Geometry, sch Scheme, tm Timing, busMHz float64, ctrl Controller, cpu CPU) (*System, error) {
	if err := sch.Validate(); err != nil {
		return nil, err
	}
	if busMHz <= 0 {
		return nil, fmt.Errorf("config: %s: non-positive bus frequency %vMHz", name, busMHz)
	}
	if cpu.Cores < 1 {
		return nil, fmt.Errorf("config: %s: CPU.Cores = %d (want >= 1)", name, cpu.Cores)
	}
	if geom.Channels < 1 || geom.Ranks < 1 {
		return nil, fmt.Errorf("config: %s: geometry needs >= 1 channel and rank (got %d, %d)", name, geom.Channels, geom.Ranks)
	}
	bus := clock.MHz("bus", busMHz)
	sys := &System{
		Name:   name,
		Geom:   geom,
		Scheme: sch,
		Timing: tm,
		Bus:    bus,
		CT:     tm.Resolve(bus),
		Ctrl:   ctrl,
		CPU:    cpu,
	}
	if sch.HasPlanes() {
		rowBits := geom.RowBits - 1 // per-sub-bank row bits
		if sch.Mode == SubBankPaired {
			rowBits = geom.RowBits // paired sub-banks keep full banks
		}
		planeBits := log2(sch.Planes)
		need := planeBits
		if sch.EWLR {
			need += sch.EWLRBits
		}
		if need > rowBits {
			return nil, fmt.Errorf("config: %s: plane bits (%d) + EWLR bits exceed row width %d", name, planeBits, rowBits)
		}
	}
	return sys, nil
}

// MustSystem is NewSystem that panics on error; used by the preset
// constructors, whose parameters are static — a failure here is a bug
// in a preset, so it is routed through diag as a typed invariant panic
// that sweep workers can recover and attribute.
func MustSystem(name string, geom Geometry, sch Scheme, tm Timing, busMHz float64, ctrl Controller, cpu CPU) *System {
	sys, err := NewSystem(name, geom, sch, tm, busMHz, ctrl, cpu)
	diag.Check(err, "config: MustSystem(%s)", name)
	return sys
}

// EffectiveBanksPerRank reports how many independently activatable
// (sub-)bank row buffers a rank exposes under the configured scheme.
func (s *System) EffectiveBanksPerRank() int {
	n := s.Geom.Banks() * s.Scheme.SubBanksPerBank()
	if s.Scheme.Mode == SubBankMASA {
		n *= s.Scheme.MASAGroups
	}
	return n
}

func log2(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

package config

import (
	"testing"

	"eruca/internal/clock"
)

func TestDefaultGeometry(t *testing.T) {
	g := DefaultGeometry()
	if g.Banks() != 16 {
		t.Errorf("banks = %d, want 16", g.Banks())
	}
	if g.RowBytes() != 8<<10 {
		t.Errorf("row bytes = %d, want 8KiB", g.RowBytes())
	}
	if g.BankBytes() != 1<<30 {
		t.Errorf("bank bytes = %d, want 1GiB", g.BankBytes())
	}
	if g.TotalBytes() != 32<<30 {
		t.Errorf("total = %d, want 32GiB", g.TotalBytes())
	}
	if g.AddrBits() != 35 {
		t.Errorf("addr bits = %d, want 35", g.AddrBits())
	}
}

func TestResolveTabIII(t *testing.T) {
	bus := clock.MHz("bus", 1333)
	ct := DDR4Timing().Resolve(bus)
	// 18-18-18 at 1333MHz.
	if ct.CL != 18 || ct.RCD != 18 || ct.RP != 18 {
		t.Errorf("CL/RCD/RP = %d/%d/%d, want 18/18/18", ct.CL, ct.RCD, ct.RP)
	}
	if ct.CCDS != 4 {
		t.Errorf("tCCD_S = %d, want 4 CLKs", ct.CCDS)
	}
	if ct.CCDL != 7 { // 5ns at 0.75ns tCK
		t.Errorf("tCCD_L = %d, want 7", ct.CCDL)
	}
	if ct.RRD != 4 {
		t.Errorf("tRRD = %d, want 4 CLKs", ct.RRD)
	}
	if ct.TWTRW != ct.CWL+4+ct.WTRL {
		t.Errorf("tTWTRW = %d, want WL+4+tWTR_L = %d", ct.TWTRW, ct.CWL+4+ct.WTRL)
	}
	if ct.RC != ct.RAS+ct.RP {
		t.Errorf("tRC = %d, want tRAS+tRP = %d", ct.RC, ct.RAS+ct.RP)
	}
}

// The two-command windows only matter once a DRAM core clock outlasts two
// external bursts. At 1.33GHz a core clock is 7 bus cycles < 2*4, so DDB
// is effectively unconstrained; at 2.4GHz it is 12 > 8 and the windows
// bind. (Sec. VI-B: "applied only when the DRAM core clock cycle time is
// longer than twice the data burst time".)
func TestTwoCommandWindowActivation(t *testing.T) {
	low := DDR4Timing().Resolve(clock.MHz("bus", 1333))
	if low.TwoCommandWindowsOn {
		t.Error("two-command windows should be off at 1.33GHz")
	}
	hi := DDR4Timing().Resolve(clock.MHz("bus", 2400))
	if !hi.TwoCommandWindowsOn {
		t.Error("two-command windows should bind at 2.4GHz")
	}
}

func TestSchemeValidate(t *testing.T) {
	bad := Scheme{Name: "bad", Mode: SubBankVSB, Planes: 3}
	if err := bad.Validate(); err == nil {
		t.Error("plane count 3 validated")
	}
	bad = Scheme{Name: "bad", Mode: SubBankVSB, Planes: 4, EWLR: true, EWLRBits: 9}
	if err := bad.Validate(); err == nil {
		t.Error("EWLR width 9 validated")
	}
	bad = Scheme{Name: "bad", Mode: SubBankMASA, MASAGroups: 3}
	if err := bad.Validate(); err == nil {
		t.Error("MASA groups 3 validated")
	}
	good := Scheme{Name: "ok", Mode: SubBankVSB, Planes: 4, EWLR: true, EWLRBits: 3, RAP: true}
	if err := good.Validate(); err != nil {
		t.Errorf("valid scheme rejected: %v", err)
	}
}

func TestPresets(t *testing.T) {
	for _, sys := range append(Fig12Systems(), Fig15Systems()...) {
		if err := sys.Scheme.Validate(); err != nil {
			t.Errorf("%s: %v", sys.Name, err)
		}
		if sys.Geom.TotalBytes() != 32<<30 {
			t.Errorf("%s: capacity changed to %d", sys.Name, sys.Geom.TotalBytes())
		}
	}
}

func TestEffectiveBanks(t *testing.T) {
	cases := []struct {
		sys  *System
		want int
	}{
		{Baseline(DefaultBusMHz), 16},
		{VSB(4, true, true, true, DefaultBusMHz), 32},
		{Ideal32(DefaultBusMHz), 32},
		{BG32(DefaultBusMHz), 32},
		{MASA(8, DefaultBusMHz), 128},
		{MASAERUCA(8, 4, true, DefaultBusMHz), 256},
		{HalfDRAM(DefaultBusMHz), 32},
		{PairedBank(4, false, DefaultBusMHz), 32},
	}
	for _, c := range cases {
		if got := c.sys.EffectiveBanksPerRank(); got != c.want {
			t.Errorf("%s: effective banks = %d, want %d", c.sys.Name, got, c.want)
		}
	}
}

func TestPlaneBitsRule(t *testing.T) {
	if VSB(4, true, false, false, DefaultBusMHz).Scheme.PlaneBits != PlaneBitsLow {
		t.Error("EWLR alone should draw plane ID from row LSBs (Fig. 9 #2)")
	}
	if VSB(4, true, true, false, DefaultBusMHz).Scheme.PlaneBits != PlaneBitsHigh {
		t.Error("EWLR+RAP should draw plane ID from row MSBs (Fig. 9 #1)")
	}
}

func TestGenerationSpecs(t *testing.T) {
	specs := GenerationSpecs()
	if len(specs) != 4 {
		t.Fatalf("got %d generations, want 4", len(specs))
	}
	if specs[3].Name != "DDR4" || specs[3].BankCount != "16" {
		t.Errorf("DDR4 spec wrong: %+v", specs[3])
	}
}

func TestNewSystemRejectsOverwidePlanes(t *testing.T) {
	sch := Scheme{Name: "huge", Mode: SubBankVSB, Planes: 1 << 15, PlaneBits: PlaneBitsHigh, EWLR: true, EWLRBits: 3}
	_, err := NewSystem("huge", DefaultGeometry(), sch, DDR4Timing(), DefaultBusMHz, DefaultController(), DefaultCPU())
	if err == nil {
		t.Error("16-bit plane ID + 3 EWLR bits in a 16-bit row accepted")
	}
}

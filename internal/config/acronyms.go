package config

// Acronym is one row of the paper's Tab. II glossary.
type Acronym struct {
	Name        string
	Description string
}

// Acronyms returns Tab. II: the DRAM-internals vocabulary the paper (and
// this codebase) uses.
func Acronyms() []Acronym {
	return []Acronym{
		{"CSL", "column select line"},
		{"SBL", "sub-bitline"},
		{"GBL", "global bitline"},
		{"SA", "sense amplifier"},
		{"LWL", "local wordline"},
		{"LWL DRV", "local wordline driver"},
		{"LWL SEL", "local wordline select"},
		{"MWL", "main wordline"},
		{"VSB", "vertical sub-bank (this work)"},
		{"EWLR", "effective wordline range (this work)"},
		{"RAP", "row address permutation (this work)"},
		{"DDB", "dual data bus (this work)"},
		{"FMFI", "free memory fragmentation index"},
		{"THP", "transparent huge pages"},
	}
}

package config

// GenerationSpec is one column of Tab. I: the headline parameters of a
// DRAM generation, illustrating the widening gap between channel and
// core frequency that motivates DDB.
type GenerationSpec struct {
	Name             string
	BankCount        string
	ChannelClockMHz  string
	CoreClockMHz     string
	InternalPrefetch string
}

// GenerationSpecs returns Tab. I.
func GenerationSpecs() []GenerationSpec {
	return []GenerationSpec{
		{"DDR", "4", "133-200", "133-200", "2n"},
		{"DDR2", "4-8", "266-400", "133-200", "4n"},
		{"DDR3", "8", "533-800", "133-200", "8n"},
		{"DDR4", "16", "1066-1600", "133-200", "8n"},
	}
}

package config

// This file defines one constructor per configuration evaluated in the
// paper (Figs. 12-16). All presets share the Tab. III geometry, timing,
// controller policy and CPU; they differ only in the Scheme and, for the
// 32-bank idealizations, the bank geometry.

// DefaultBusMHz is the Tab. III DDR4 channel frequency (1.33GHz).
const DefaultBusMHz = 1333

// Baseline returns stock DDR4: 16 banks, 4 bank groups, no sub-banking.
// Every speedup in the paper is normalized to this configuration.
func Baseline(busMHz float64) *System {
	sch := Scheme{Name: "DDR4", Mode: SubBankNone, BankGrouping: true}
	return MustSystem("DDR4", DefaultGeometry(), sch, DDR4Timing(), busMHz, DefaultController(), DefaultCPU())
}

// VSB returns a vertical sub-bank configuration with the given plane
// count and conflict-avoidance mechanisms. With ddb=false the chip keeps
// the single bank-group bus ("VSB+BG" in Fig. 12).
func VSB(planes int, ewlr, rap, ddb bool, busMHz float64) *System {
	name := "VSB(" + vsbTag(ewlr, rap) + ")"
	if ddb {
		name += "+DDB"
	} else {
		name += "+BG"
	}
	sch := Scheme{
		Name:         name,
		Mode:         SubBankVSB,
		Planes:       planes,
		PlaneBits:    planeBitsFor(ewlr, rap),
		EWLR:         ewlr,
		EWLRBits:     3,
		RAP:          rap,
		DDB:          ddb,
		BankGrouping: true,
	}
	return MustSystem(name, DefaultGeometry(), sch, DDR4Timing(), busMHz, DefaultController(), DefaultCPU())
}

// planeBitsFor implements the Fig. 9 address-mapping rule: EWLR alone
// draws the plane ID from the row LSBs (above the EWLR offset); as soon
// as RAP is in play the plane ID moves to the row MSBs, which RAP
// permutes per sub-bank.
func planeBitsFor(ewlr, rap bool) PlaneBitsMode {
	if rap {
		return PlaneBitsHigh
	}
	if ewlr {
		return PlaneBitsLow
	}
	// Naive VSB: planes are contiguous row regions indexed by the MSBs
	// (Fig. 3a/b).
	return PlaneBitsHigh
}

func vsbTag(ewlr, rap bool) string {
	switch {
	case ewlr && rap:
		return "EWLR+RAP"
	case ewlr:
		return "EWLR"
	case rap:
		return "RAP"
	default:
		return "naive"
	}
}

// PairedBank returns the non-Combo paired-bank design of Fig. 3e: two
// adjacent banks share one row decoder and act as the two sub-banks of a
// paired bank, always with EWLR+RAP (the paper evaluates no naive
// paired-bank).
func PairedBank(planes int, ddb bool, busMHz float64) *System {
	name := "Paired-bank(EWLR+RAP)"
	if ddb {
		name += "+DDB"
	}
	sch := Scheme{
		Name:         name,
		Mode:         SubBankPaired,
		Planes:       planes,
		PlaneBits:    PlaneBitsHigh,
		EWLR:         true,
		EWLRBits:     3,
		RAP:          true,
		DDB:          ddb,
		BankGrouping: true,
	}
	return MustSystem(name, DefaultGeometry(), sch, DDR4Timing(), busMHz, DefaultController(), DefaultCPU())
}

// PairedBankNonCombo returns the fully non-Combo ERUCA design: paired
// banks (Fig. 3e) with EWLR+RAP plus the Sec. V DDB variant, where the
// dual-bus switches connect vertically-adjacent bank groups instead of
// reusing the x4-idle second bus.
func PairedBankNonCombo(planes int, busMHz float64) *System {
	sch := Scheme{
		Name:          "Paired-bank(EWLR+RAP)+DDBpairs",
		Mode:          SubBankPaired,
		Planes:        planes,
		PlaneBits:     PlaneBitsHigh,
		EWLR:          true,
		EWLRBits:      3,
		RAP:           true,
		DDB:           true,
		DDBGroupPairs: true,
		BankGrouping:  true,
	}
	return MustSystem(sch.Name, DefaultGeometry(), sch, DDR4Timing(), busMHz, DefaultController(), DefaultCPU())
}

// HalfDRAM returns the Half-DRAM comparison point of Fig. 15: two
// wordline-direction sub-banks that share row-address latches, modeled
// as a 2-plane naive sub-bank pair without EWLR, RAP or DDB.
func HalfDRAM(busMHz float64) *System {
	sch := Scheme{
		Name:         "Half-DRAM",
		Mode:         SubBankHalfDRAM,
		Planes:       2,
		PlaneBits:    PlaneBitsHigh,
		BankGrouping: true,
	}
	return MustSystem("Half-DRAM", DefaultGeometry(), sch, DDR4Timing(), busMHz, DefaultController(), DefaultCPU())
}

// MASA returns the MASA (SALP) comparison point with the given number of
// subarray groups per bank (4 or 8 in Fig. 15).
func MASA(groups int, busMHz float64) *System {
	name := "MASA4"
	if groups == 8 {
		name = "MASA8"
	}
	sch := Scheme{
		Name:         name,
		Mode:         SubBankMASA,
		MASAGroups:   groups,
		BankGrouping: true,
	}
	return MustSystem(name, DefaultGeometry(), sch, DDR4Timing(), busMHz, DefaultController(), DefaultCPU())
}

// MASAERUCA composes MASA8 with the ERUCA mechanisms (Fig. 15's
// MASA8+ERUCA bars): VSB sub-banks on top of 8 subarray groups with
// EWLR+RAP on the shared latches, optionally with DDB.
func MASAERUCA(groups, planes int, ddb bool, busMHz float64) *System {
	name := "MASA8+ERUCA"
	if !ddb {
		name += "(no DDB)"
	}
	sch := Scheme{
		Name:         name,
		Mode:         SubBankMASA,
		MASAGroups:   groups,
		MASAStacked:  true,
		Planes:       planes,
		PlaneBits:    PlaneBitsHigh,
		EWLR:         true,
		EWLRBits:     3,
		RAP:          true,
		DDB:          ddb,
		BankGrouping: true,
	}
	return MustSystem(name, DefaultGeometry(), sch, DDR4Timing(), busMHz, DefaultController(), DefaultCPU())
}

// thirtyTwoBankGeometry doubles the bank count at constant capacity:
// 8 banks per group, one less row bit. Neither 32-bank design is
// practical (11% die overhead); they bound achievable performance.
func thirtyTwoBankGeometry() Geometry {
	g := DefaultGeometry()
	g.BanksPerGroup = 8
	g.RowBits--
	return g
}

// Ideal32 returns the idealized DDR4 of Fig. 12: 32 full banks and
// enough internal buses that bank grouping (and its tCCD_L/tWTR_L
// penalties) disappears.
func Ideal32(busMHz float64) *System {
	sch := Scheme{Name: "Ideal32", Mode: SubBankNone, BankGrouping: false}
	return MustSystem("Ideal32", thirtyTwoBankGeometry(), sch, DDR4Timing(), busMHz, DefaultController(), DefaultCPU())
}

// BG32 returns 32 banks that still pay the bank-group timing
// constraints ("bg32" in Fig. 12).
func BG32(busMHz float64) *System {
	sch := Scheme{Name: "BG32", Mode: SubBankNone, BankGrouping: true}
	return MustSystem("BG32", thirtyTwoBankGeometry(), sch, DDR4Timing(), busMHz, DefaultController(), DefaultCPU())
}

// Fig12Systems returns the configurations of Fig. 12 in presentation
// order, all at the default 1.33GHz bus.
func Fig12Systems() []*System {
	return []*System{
		PairedBank(4, false, DefaultBusMHz),
		PairedBank(4, true, DefaultBusMHz),
		VSB(4, false, false, false, DefaultBusMHz),
		VSB(4, false, false, true, DefaultBusMHz),
		VSB(4, true, true, true, DefaultBusMHz),
		BG32(DefaultBusMHz),
		Ideal32(DefaultBusMHz),
	}
}

// Fig15Systems returns the prior-work comparison configurations of
// Fig. 15.
func Fig15Systems() []*System {
	return []*System{
		HalfDRAM(DefaultBusMHz),
		VSB(4, true, true, false, DefaultBusMHz),
		VSB(4, true, true, true, DefaultBusMHz),
		MASA(4, DefaultBusMHz),
		MASA(8, DefaultBusMHz),
		MASAERUCA(8, 4, false, DefaultBusMHz),
		MASAERUCA(8, 4, true, DefaultBusMHz),
		Ideal32(DefaultBusMHz),
	}
}

// Fig14Frequencies lists the channel frequencies swept in Fig. 14 (MHz).
func Fig14Frequencies() []float64 { return []float64{1333, 1600, 2000, 2400} }

package config

import (
	"fmt"
	"sort"
)

// ByName builds a preset system by its registry name, with the given
// plane count (where applicable) and bus frequency. Names:
//
//	ddr4            stock DDR4 baseline
//	vsb-naive       VSB without conflict avoidance, bank-group bus
//	vsb-naive-ddb   VSB + DDB
//	vsb-ewlr        VSB + EWLR (+DDB with the -ddb suffix convention below)
//	vsb-rap         VSB + RAP
//	vsb-ewlr-rap    VSB + EWLR + RAP
//	vsb-ewlr-ddb, vsb-rap-ddb, vsb-ewlr-rap-ddb
//	paired          paired-bank ERUCA (EWLR+RAP)
//	paired-ddb      paired-bank ERUCA + DDB
//	halfdram        Half-DRAM comparison point
//	masa4, masa8    MASA comparison points
//	masa8-eruca     MASA8 + VSB(EWLR+RAP) + DDB
//	masa8-eruca-noddb
//	bg32, ideal32   32-bank references
func ByName(name string, planes int, busMHz float64) (*System, error) {
	if planes == 0 {
		planes = 4
	}
	if busMHz == 0 {
		busMHz = DefaultBusMHz
	}
	switch name {
	case "ddr4":
		return Baseline(busMHz), nil
	case "vsb-naive":
		return VSB(planes, false, false, false, busMHz), nil
	case "vsb-naive-ddb":
		return VSB(planes, false, false, true, busMHz), nil
	case "vsb-ewlr":
		return VSB(planes, true, false, false, busMHz), nil
	case "vsb-ewlr-ddb":
		return VSB(planes, true, false, true, busMHz), nil
	case "vsb-rap":
		return VSB(planes, false, true, false, busMHz), nil
	case "vsb-rap-ddb":
		return VSB(planes, false, true, true, busMHz), nil
	case "vsb-ewlr-rap":
		return VSB(planes, true, true, false, busMHz), nil
	case "vsb-ewlr-rap-ddb":
		return VSB(planes, true, true, true, busMHz), nil
	case "paired":
		return PairedBank(planes, false, busMHz), nil
	case "paired-ddb":
		return PairedBank(planes, true, busMHz), nil
	case "paired-ddb-nocombo":
		return PairedBankNonCombo(planes, busMHz), nil
	case "halfdram":
		return HalfDRAM(busMHz), nil
	case "masa4":
		return MASA(4, busMHz), nil
	case "masa8":
		return MASA(8, busMHz), nil
	case "masa8-eruca":
		return MASAERUCA(8, planes, true, busMHz), nil
	case "masa8-eruca-noddb":
		return MASAERUCA(8, planes, false, busMHz), nil
	case "bg32":
		return BG32(busMHz), nil
	case "ideal32":
		return Ideal32(busMHz), nil
	}
	return nil, fmt.Errorf("config: unknown system %q (see RegistryNames)", name)
}

// RegistryNames lists every name ByName accepts, sorted.
func RegistryNames() []string {
	names := []string{
		"ddr4", "vsb-naive", "vsb-naive-ddb", "vsb-ewlr", "vsb-ewlr-ddb",
		"vsb-rap", "vsb-rap-ddb", "vsb-ewlr-rap", "vsb-ewlr-rap-ddb",
		"paired", "paired-ddb", "paired-ddb-nocombo", "halfdram",
		"masa4", "masa8", "masa8-eruca", "masa8-eruca-noddb", "bg32", "ideal32",
	}
	sort.Strings(names)
	return names
}

package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSamplerBasics(t *testing.T) {
	var s Sampler
	if s.Mean() != 0 || s.N() != 0 || s.Quantile(0.5) != 0 {
		t.Error("empty sampler not zero")
	}
	for _, v := range []float64{4, 1, 3, 2, 5} {
		s.Add(v)
	}
	if s.N() != 5 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Errorf("mean = %v", s.Mean())
	}
	q1, med, q3 := s.Quartiles()
	if q1 != 2 || med != 3 || q3 != 4 {
		t.Errorf("quartiles = %v %v %v", q1, med, q3)
	}
	if s.Max() != 5 {
		t.Errorf("max = %v", s.Max())
	}
}

func TestSamplerInterleavedAddQuantile(t *testing.T) {
	var s Sampler
	s.Add(10)
	if s.Quantile(0.5) != 10 {
		t.Error("single-sample median")
	}
	s.Add(20) // after a sort
	if s.Max() != 20 {
		t.Errorf("max after re-add = %v", s.Max())
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var s Sampler
	for i := 0; i < 1000; i++ {
		s.Add(r.NormFloat64() * 10)
	}
	f := func(a, b uint8) bool {
		qa, qb := float64(a)/255, float64(b)/255
		if qa > qb {
			qa, qb = qb, qa
		}
		return s.Quantile(qa) <= s.Quantile(qb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightedSpeedup(t *testing.T) {
	ws := WeightedSpeedup([]float64{1, 2}, []float64{2, 2})
	if ws != 1.5 {
		t.Errorf("WS = %v, want 1.5", ws)
	}
	// Equal shared and alone IPC: WS = core count.
	ws = WeightedSpeedup([]float64{1, 1, 1, 1}, []float64{1, 1, 1, 1})
	if ws != 4 {
		t.Errorf("WS = %v, want 4", ws)
	}
}

func TestWeightedSpeedupMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on length mismatch")
		}
	}()
	WeightedSpeedup([]float64{1}, []float64{1, 2})
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("geomean = %v, want 2", g)
	}
	if g := GeoMean([]float64{2, 0, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean skipping zeros = %v, want 4", g)
	}
	if GeoMean(nil) != 0 {
		t.Error("empty geomean not 0")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(3, 2) != 1.5 || Ratio(1, 0) != 0 {
		t.Error("ratio")
	}
}

func TestMergeScales(t *testing.T) {
	var a, b Sampler
	for _, v := range []float64{1, 2, 3} {
		a.Add(v)
	}
	b.Merge(&a, 10)
	if b.N() != 3 || b.Mean() != 20 {
		t.Errorf("merged: n=%d mean=%v", b.N(), b.Mean())
	}
	// Merging does not disturb the source.
	if a.Mean() != 2 {
		t.Errorf("source mean changed: %v", a.Mean())
	}
}

func TestValuesExposeSamples(t *testing.T) {
	var s Sampler
	s.Add(5)
	s.Add(1)
	vals := s.Values()
	if len(vals) != 2 {
		t.Fatalf("values = %v", vals)
	}
	sum := vals[0] + vals[1]
	if sum != 6 {
		t.Errorf("values sum = %v", sum)
	}
}

func TestSamplerString(t *testing.T) {
	var s Sampler
	s.Add(1)
	if s.String() == "" {
		t.Error("empty String()")
	}
}

package stats

import (
	"eruca/internal/rng"
	"eruca/internal/snapshot"
)

// Snapshot serializes the sampler's full mutable state — counts, sum,
// retained values, and (in reservoir mode) the replacement PRNG cursor
// — so a restored sampler continues the exact retained-subset stream.
func (s *Sampler) Snapshot(e *snapshot.Encoder) {
	e.Int(s.n)
	e.Int(s.cap)
	e.F64(s.sum)
	e.Bool(s.sorted)
	e.Int(len(s.vals))
	for _, v := range s.vals {
		e.F64(v)
	}
	if s.cap > 0 {
		seed, draws := s.src.State()
		e.I64(seed)
		e.U64(draws)
	}
}

// Restore rebuilds the sampler from a Snapshot stream. It may be called
// on a zero sampler or one already armed via Reservoir; the snapshot's
// mode wins either way.
func (s *Sampler) Restore(d *snapshot.Decoder) {
	s.n = d.Int()
	s.cap = d.Int()
	s.sum = d.F64()
	s.sorted = d.Bool()
	k := d.Count(8)
	s.vals = s.vals[:0]
	for i := 0; i < k; i++ {
		s.vals = append(s.vals, d.F64())
	}
	if s.cap > 0 {
		seed := d.I64()
		draws := d.U64()
		if d.Err() == nil {
			if s.src == nil {
				s.rng, s.src = rng.New(seed)
			}
			s.src.Restore(seed, draws)
		}
	} else {
		s.rng, s.src = nil, nil
	}
}

package stats

import (
	"math/rand"
	"sync"
	"testing"
)

// TestMergeUnderConcurrency pins down the Sampler concurrency contract
// the parallel experiment engine relies on: a Sampler is NOT
// goroutine-safe, so each worker accumulates into its own private
// Sampler and the results are merged serially afterwards. Run under
// -race (make race / CI) this proves the shard-then-merge pattern is
// race-free, and the assertions prove the merged statistics equal a
// serial accumulation of the same samples regardless of worker
// interleaving.
func TestMergeUnderConcurrency(t *testing.T) {
	const (
		workers    = 8
		perWorker  = 10_000
		scale      = 2.5
		quantEps   = 1e-9
		totalCount = workers * perWorker
	)

	// Per-worker sample sets, deterministic per worker so the serial
	// reference sees exactly the same values.
	sets := make([][]float64, workers)
	for w := range sets {
		rng := rand.New(rand.NewSource(int64(1000 + w)))
		vals := make([]float64, perWorker)
		for i := range vals {
			vals[i] = rng.Float64() * 100
		}
		sets[w] = vals
	}

	// Parallel phase: each worker owns its shard. Quantile is called
	// mid-stream too — it sorts in place, and that must stay private to
	// the shard.
	shards := make([]Sampler, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, v := range sets[w] {
				shards[w].Add(v)
				if i == perWorker/2 {
					_ = shards[w].Quantile(0.5)
				}
			}
		}(w)
	}
	wg.Wait()

	// Serial merge into one distribution, with the same scale the
	// simulator uses to convert per-channel cycles to nanoseconds.
	var merged Sampler
	for w := range shards {
		merged.Merge(&shards[w], scale)
	}

	// Serial reference over the identical multiset of samples.
	var ref Sampler
	for _, vals := range sets {
		for _, v := range vals {
			ref.Add(v * scale)
		}
	}

	if merged.N() != totalCount || ref.N() != totalCount {
		t.Fatalf("N: merged=%d ref=%d, want %d", merged.N(), ref.N(), totalCount)
	}
	if d := merged.Mean() - ref.Mean(); d > 1e-6 || d < -1e-6 {
		t.Errorf("mean drift %v (merged %v, ref %v)", d, merged.Mean(), ref.Mean())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.99, 1} {
		m, r := merged.Quantile(q), ref.Quantile(q)
		if d := m - r; d > quantEps || d < -quantEps {
			t.Errorf("q%.2f: merged %v != ref %v", q, m, r)
		}
	}
}

// TestMergeEmptyShards: merging empty samplers is a no-op, and merging
// into an empty sampler copies the source — degenerate shard splits
// (more workers than work) must not corrupt the distribution.
func TestMergeEmptyShards(t *testing.T) {
	var empty, dst Sampler
	dst.Add(1)
	dst.Merge(&empty, 10)
	if dst.N() != 1 || dst.Mean() != 1 {
		t.Errorf("merge of empty shard changed dst: %v", dst.String())
	}
	var fresh Sampler
	src := Sampler{}
	src.Add(3)
	fresh.Merge(&src, 2)
	if fresh.N() != 1 || fresh.Mean() != 6 {
		t.Errorf("merge into empty sampler: %v", fresh.String())
	}
}

package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestReservoirExactUnderCapacity proves the bounded sampler degrades
// to the exact sampler while the stream fits in the reservoir.
func TestReservoirExactUnderCapacity(t *testing.T) {
	var exact, bounded Sampler
	bounded.Reservoir(100, 1)
	for i := 0; i < 100; i++ {
		v := float64(i * 3)
		exact.Add(v)
		bounded.Add(v)
	}
	if exact.Mean() != bounded.Mean() {
		t.Errorf("mean %v != %v", exact.Mean(), bounded.Mean())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.99, 1} {
		if exact.Quantile(q) != bounded.Quantile(q) {
			t.Errorf("q%.2f: %v != %v", q, exact.Quantile(q), bounded.Quantile(q))
		}
	}
	if bounded.Retained() != 100 || bounded.N() != 100 {
		t.Errorf("retained/n = %d/%d", bounded.Retained(), bounded.N())
	}
}

// TestReservoirEquivalence is the Fig16a-path satellite check: a
// bounded reservoir over a long stream keeps Mean and N exact and its
// quantiles within tight error bounds of the full-sample quantiles.
// The stream is adversarially non-stationary (drifting lognormal) so a
// windowed or biased sampler would fail.
func TestReservoirEquivalence(t *testing.T) {
	const (
		n = 200_000
		k = 8192
	)
	rng := rand.New(rand.NewSource(99))
	var exact, bounded Sampler
	bounded.Reservoir(k, 0x43a7_90e5)
	var sum float64
	for i := 0; i < n; i++ {
		drift := 1 + float64(i)/float64(n) // latencies grow as queues fill
		v := math.Exp(rng.NormFloat64()*0.5) * 100 * drift
		sum += v
		exact.Add(v)
		bounded.Add(v)
	}
	if bounded.N() != n {
		t.Fatalf("N = %d, want %d (exact through sampling)", bounded.N(), n)
	}
	if bounded.Retained() != k {
		t.Fatalf("retained = %d, want %d", bounded.Retained(), k)
	}
	if got, want := bounded.Mean(), sum/n; math.Abs(got-want) > 1e-9*want {
		t.Fatalf("mean = %v, want exact %v", got, want)
	}
	// Quantile error bound: for a uniform k-reservoir the rank error is
	// O(1/sqrt(k)); with k=8192 a 5% relative tolerance on mid quantiles
	// is conservative by an order of magnitude.
	for _, q := range []float64{0.25, 0.5, 0.75, 0.9, 0.99} {
		e, b := exact.Quantile(q), bounded.Quantile(q)
		if rel := math.Abs(e-b) / e; rel > 0.05 {
			t.Errorf("q%.2f: exact %v vs reservoir %v (rel err %.3f > 0.05)", q, e, b, rel)
		}
	}
}

// TestReservoirDeterministic proves the fixed-seed reservoir is
// reproducible — the property that keeps sweep tables byte-identical
// at any parallelism.
func TestReservoirDeterministic(t *testing.T) {
	run := func() []float64 {
		var s Sampler
		s.Reservoir(64, 7)
		for i := 0; i < 10_000; i++ {
			s.Add(float64(i%977) + 0.25)
		}
		out := append([]float64(nil), s.Values()...)
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("retained sample %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestReservoirMergeKeepsExactMoments proves Merge keeps N and Mean
// exact even when the other sampler dropped samples to its reservoir.
func TestReservoirMergeKeepsExactMoments(t *testing.T) {
	var a Sampler
	a.Add(10)
	a.Add(20)
	var b Sampler
	b.Reservoir(8, 3)
	var bsum float64
	for i := 0; i < 1000; i++ {
		v := float64(i)
		b.Add(v)
		bsum += v
	}
	a.Merge(&b, 1)
	if got, want := a.N(), 1002; got != want {
		t.Fatalf("merged N = %d, want %d", got, want)
	}
	wantMean := (10 + 20 + bsum) / 1002
	if got := a.Mean(); math.Abs(got-wantMean) > 1e-9 {
		t.Fatalf("merged mean = %v, want %v", got, wantMean)
	}
}

// Package stats provides the small statistics toolkit used across the
// simulator: streaming samplers with quantiles (for the Fig. 16a read
// queueing latency distribution), weighted speedup (Snavely-Tullsen, as
// in Fig. 12), and geometric means.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"eruca/internal/diag"
	"eruca/internal/rng"
)

// Sampler accumulates float64 samples and reports summary statistics.
// The zero value is ready to use and retains every sample (O(n) memory).
// Reservoir arms a bounded streaming mode that keeps a uniform random
// subset of fixed size for quantiles while the count and sum — hence N
// and Mean — stay exact.
type Sampler struct {
	vals   []float64
	sum    float64
	sorted bool

	n   int         // total samples observed (== len(vals) when unbounded)
	cap int         // reservoir capacity; 0 = retain everything
	rng *rand.Rand  // replacement PRNG (reservoir mode only)
	src *rng.Source // counting source behind rng, for checkpoint/restore
}

// Reservoir bounds the sampler to k retained samples using Vitter's
// Algorithm R with a deterministic PRNG: each observed sample has
// probability k/n of being retained, so nearest-rank quantiles over the
// retained set converge to the true quantiles with error O(1/sqrt(k)).
// The same seed always retains the same subset for the same input
// stream, keeping sweep tables byte-identical at any parallelism. Must
// be called before the first Add.
func (s *Sampler) Reservoir(k int, seed int64) {
	diag.Invariant(len(s.vals) == 0, "stats: Reservoir armed on a non-empty sampler (n=%d)", len(s.vals))
	diag.Invariant(k > 0, "stats: non-positive reservoir capacity %d", k)
	s.cap = k
	s.rng, s.src = rng.New(seed)
}

// Bounded reports whether the sampler is in reservoir mode.
func (s *Sampler) Bounded() bool { return s.cap > 0 }

// Add records a sample.
func (s *Sampler) Add(v float64) {
	s.n++
	s.sum += v
	if s.cap > 0 && len(s.vals) >= s.cap {
		// Algorithm R: the new sample displaces a uniformly random
		// retained one with probability cap/n. The retained set stays an
		// exchangeable uniform subset even though Quantile sorts in place.
		if j := s.rng.Intn(s.n); j < s.cap {
			s.vals[j] = v
			s.sorted = false
		}
		return
	}
	s.vals = append(s.vals, v)
	s.sorted = false
}

// N reports the total number of samples observed (exact in both modes).
func (s *Sampler) N() int { return s.n }

// Retained reports how many samples are resident for quantile queries.
func (s *Sampler) Retained() int { return len(s.vals) }

// Mean reports the arithmetic mean over every observed sample (exact in
// both modes; 0 for an empty sampler).
func (s *Sampler) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Quantile reports the q-quantile (0 <= q <= 1) by nearest-rank on the
// sorted samples.
func (s *Sampler) Quantile(q float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
	idx := int(q*float64(len(s.vals)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s.vals) {
		idx = len(s.vals) - 1
	}
	return s.vals[idx]
}

// Quartiles reports the 25th, 50th and 75th percentiles (the Fig. 16a
// box parameters).
func (s *Sampler) Quartiles() (q1, median, q3 float64) {
	return s.Quantile(0.25), s.Quantile(0.5), s.Quantile(0.75)
}

// Max reports the largest sample.
func (s *Sampler) Max() float64 { return s.Quantile(1) }

// Values exposes the raw samples (possibly reordered). Callers must not
// modify the returned slice.
func (s *Sampler) Values() []float64 { return s.vals }

// Merge adds every retained sample of other, scaled by the given factor
// — used to combine per-channel cycle samplers into one nanosecond
// distribution. When other is a bounded reservoir, the samples its
// reservoir dropped still contribute to the merged count and sum, so N
// and Mean stay exact end to end.
func (s *Sampler) Merge(other *Sampler, scale float64) {
	var retained float64
	for _, v := range other.vals {
		s.Add(v * scale)
		retained += v
	}
	if extra := other.n - len(other.vals); extra > 0 {
		s.n += extra
		s.sum += (other.sum - retained) * scale
	}
}

// String implements fmt.Stringer.
func (s *Sampler) String() string {
	q1, med, q3 := s.Quartiles()
	return fmt.Sprintf("n=%d mean=%.1f q1=%.1f med=%.1f q3=%.1f", s.N(), s.Mean(), q1, med, q3)
}

// WeightedSpeedup computes the Snavely-Tullsen weighted speedup of a
// multiprogrammed run: sum over cores of IPC_shared/IPC_alone. It panics
// on mismatched lengths and skips cores with zero alone-IPC.
func WeightedSpeedup(ipcShared, ipcAlone []float64) float64 {
	diag.Invariant(len(ipcShared) == len(ipcAlone),
		"stats: %d shared IPCs vs %d alone IPCs", len(ipcShared), len(ipcAlone))
	ws := 0.0
	for i := range ipcShared {
		if ipcAlone[i] > 0 {
			ws += ipcShared[i] / ipcAlone[i]
		}
	}
	return ws
}

// GeoMean reports the geometric mean of positive values; zero or
// negative entries are skipped.
func GeoMean(vals []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vals {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Ratio reports a/b, or 0 when b is 0 — a convenience for normalized
// metrics.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Package stats provides the small statistics toolkit used across the
// simulator: streaming samplers with quantiles (for the Fig. 16a read
// queueing latency distribution), weighted speedup (Snavely-Tullsen, as
// in Fig. 12), and geometric means.
package stats

import (
	"fmt"
	"math"
	"sort"

	"eruca/internal/diag"
)

// Sampler accumulates float64 samples and reports summary statistics.
// The zero value is ready to use. Samples are retained, so memory is
// O(n); the simulator produces at most a few hundred thousand samples
// per run.
type Sampler struct {
	vals   []float64
	sum    float64
	sorted bool
}

// Add records a sample.
func (s *Sampler) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sum += v
	s.sorted = false
}

// N reports the sample count.
func (s *Sampler) N() int { return len(s.vals) }

// Mean reports the arithmetic mean (0 for an empty sampler).
func (s *Sampler) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return s.sum / float64(len(s.vals))
}

// Quantile reports the q-quantile (0 <= q <= 1) by nearest-rank on the
// sorted samples.
func (s *Sampler) Quantile(q float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
	idx := int(q*float64(len(s.vals)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s.vals) {
		idx = len(s.vals) - 1
	}
	return s.vals[idx]
}

// Quartiles reports the 25th, 50th and 75th percentiles (the Fig. 16a
// box parameters).
func (s *Sampler) Quartiles() (q1, median, q3 float64) {
	return s.Quantile(0.25), s.Quantile(0.5), s.Quantile(0.75)
}

// Max reports the largest sample.
func (s *Sampler) Max() float64 { return s.Quantile(1) }

// Values exposes the raw samples (possibly reordered). Callers must not
// modify the returned slice.
func (s *Sampler) Values() []float64 { return s.vals }

// Merge adds every sample of other, scaled by the given factor — used to
// combine per-channel cycle samplers into one nanosecond distribution.
func (s *Sampler) Merge(other *Sampler, scale float64) {
	for _, v := range other.vals {
		s.Add(v * scale)
	}
}

// String implements fmt.Stringer.
func (s *Sampler) String() string {
	q1, med, q3 := s.Quartiles()
	return fmt.Sprintf("n=%d mean=%.1f q1=%.1f med=%.1f q3=%.1f", s.N(), s.Mean(), q1, med, q3)
}

// WeightedSpeedup computes the Snavely-Tullsen weighted speedup of a
// multiprogrammed run: sum over cores of IPC_shared/IPC_alone. It panics
// on mismatched lengths and skips cores with zero alone-IPC.
func WeightedSpeedup(ipcShared, ipcAlone []float64) float64 {
	diag.Invariant(len(ipcShared) == len(ipcAlone),
		"stats: %d shared IPCs vs %d alone IPCs", len(ipcShared), len(ipcAlone))
	ws := 0.0
	for i := range ipcShared {
		if ipcAlone[i] > 0 {
			ws += ipcShared[i] / ipcAlone[i]
		}
	}
	return ws
}

// GeoMean reports the geometric mean of positive values; zero or
// negative entries are skipped.
func GeoMean(vals []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vals {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Ratio reports a/b, or 0 when b is 0 — a convenience for normalized
// metrics.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

package eruca_test

import (
	"testing"

	"eruca"
)

func TestPresetsAndBenchmarks(t *testing.T) {
	if len(eruca.Presets()) < 15 {
		t.Errorf("presets = %v", eruca.Presets())
	}
	if len(eruca.Benchmarks()) != 10 {
		t.Errorf("benchmarks = %v", eruca.Benchmarks())
	}
	if len(eruca.Mixes()) != 9 {
		t.Errorf("mixes = %d", len(eruca.Mixes()))
	}
}

func TestNewSystemDefaults(t *testing.T) {
	sys, err := eruca.NewSystem("vsb-ewlr-rap-ddb", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Scheme.Planes != 4 {
		t.Errorf("default planes = %d, want 4", sys.Scheme.Planes)
	}
	if got := sys.Bus.FreqMHz(); got < 1330 || got > 1340 {
		t.Errorf("default bus = %vMHz", got)
	}
	if _, err := eruca.NewSystem("bogus", 0, 0); err == nil {
		t.Error("bogus preset accepted")
	}
}

func TestSimulateQuick(t *testing.T) {
	res, err := eruca.Simulate("ddr4", []string{"astar"}, eruca.RunConfig{Instrs: 20_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.System != "DDR4" || len(res.IPC) != 1 || res.IPC[0] <= 0 {
		t.Errorf("result: %+v", res)
	}
}

func TestSimulateSystemCustomScheme(t *testing.T) {
	sys, err := eruca.NewSystem("vsb-ewlr-rap-ddb", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	sys.Scheme.EWLRBits = 4
	res, err := eruca.SimulateSystem(sys, []string{"milc"}, eruca.RunConfig{Instrs: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.DRAM.Reads == 0 {
		t.Error("no traffic")
	}
}

func TestAreaOverheadAPI(t *testing.T) {
	sys, _ := eruca.NewSystem("vsb-ewlr-rap-ddb", 4, 0)
	if o := eruca.AreaOverhead(sys.Scheme); o <= 0 || o > 0.004 {
		t.Errorf("area overhead = %v", o)
	}
	base, _ := eruca.NewSystem("ddr4", 0, 0)
	if o := eruca.AreaOverhead(base.Scheme); o != 0 {
		t.Errorf("baseline overhead = %v", o)
	}
}

func TestRunConfigCapture(t *testing.T) {
	n := 0
	_, err := eruca.Simulate("ddr4", []string{"mcf"}, eruca.RunConfig{
		Instrs:  15_000,
		Capture: func(eruca.TraceRecord) { n++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("no records captured via public API")
	}
}

func TestExperimentsFacade(t *testing.T) {
	r := eruca.NewExperiments(eruca.ExperimentParams{Instrs: 10_000, Mixes: []string{"mix8"}})
	if got := len(r.Mixes()); got != 1 {
		t.Errorf("experiment mixes = %d", got)
	}
}

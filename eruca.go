// Package eruca is a simulation library reproducing ERUCA — Efficient
// DRAM Resource Utilization and Conflict Avoidance for Memory System
// Parallelism (Lym et al., HPCA 2018).
//
// ERUCA raises effective DRAM bank parallelism at near-zero die cost by
// splitting each x4 Combo-DRAM bank into two vertical sub-banks (VSB)
// and attacking the conflicts on the resources the sub-banks share:
//
//   - EWLR (effective wordline range) lets both sub-banks stay active in
//     one plane when their rows share a main-wordline address;
//   - RAP (row address permutation) inverts one sub-bank's plane-ID bits
//     so huge-page-induced MSB locality stops causing plane conflicts;
//   - DDB (dual data bus) switches in the chip-global bus that is idle
//     in x4 mode, doubling per-bank-group column bandwidth under the
//     tTCW/tTWTRW two-command windows.
//
// The library contains everything needed to reproduce the paper's
// evaluation: a cycle-level DDR4 timing engine with sub-banks, planes,
// MASA subarrays and DDB; an FR-FCFS memory controller; trace-driven
// out-of-order cores with caches; a buddy allocator with transparent
// huge pages and controllable fragmentation; synthetic SPEC2006-like
// workloads; and energy/area models.
//
// Quick start:
//
//	res, err := eruca.Simulate("vsb-ewlr-rap-ddb", []string{"mcf", "lbm"}, eruca.RunConfig{})
//	base, err := eruca.Simulate("ddr4", []string{"mcf", "lbm"}, eruca.RunConfig{})
//	// compare res.IPC against base.IPC
//
// Every configuration of the paper's figures is available by preset name
// (see Presets), and the full figure harness is exposed through
// NewExperiments. The cmd/erucasim and cmd/erucabench binaries wrap the
// same entry points.
package eruca

import (
	"eruca/internal/area"
	"eruca/internal/config"
	"eruca/internal/exp"
	"eruca/internal/sim"
	"eruca/internal/trace"
	"eruca/internal/workload"
)

// System is a fully resolved machine configuration (DRAM geometry,
// scheme, timing, controller and CPU parameters).
type System = config.System

// Scheme describes a sub-banking/conflict-avoidance design point.
type Scheme = config.Scheme

// Result is the outcome of one simulation run: per-core IPC and MPKI,
// DRAM command statistics, latency distributions and energy.
type Result = sim.Result

// TraceRecord is one captured DRAM transaction (for Fig. 4-style
// analyses).
type TraceRecord = trace.Record

// Mix is a named multiprogrammed workload.
type Mix = workload.Mix

// Presets lists the configuration names accepted by NewSystem and
// Simulate — every design point of the paper's evaluation.
func Presets() []string { return config.RegistryNames() }

// Benchmarks lists the modeled SPEC CPU2006 workloads.
func Benchmarks() []string { return workload.Names() }

// Mixes returns the nine 4-program mixes of Tab. III.
func Mixes() []Mix { return workload.Mixes() }

// NewSystem builds a preset system. planes selects the plane count for
// sub-banked presets (0 = the paper's default of 4); busMHz selects the
// channel frequency (0 = 1333, the Tab. III default).
func NewSystem(preset string, planes int, busMHz float64) (*System, error) {
	return config.ByName(preset, planes, busMHz)
}

// RunConfig controls a simulation run. The zero value uses sensible
// defaults: 250k measured instructions per core after a 125k warmup,
// 10% memory fragmentation, seed 42.
type RunConfig struct {
	// Instrs is the measured instruction budget per core.
	Instrs int64
	// Warmup instructions run before measurement (default Instrs/2).
	Warmup int64
	// Frag is the target free-memory fragmentation index.
	Frag float64
	// FragSet marks Frag as explicit (distinguishes 0 from default).
	FragSet bool
	// Seed drives all randomness (default 42).
	Seed int64
	// Planes / BusMHz configure the preset (0 = paper defaults).
	Planes int
	BusMHz float64
	// Capture receives every DRAM transaction when set.
	Capture func(TraceRecord)
}

func (rc RunConfig) normalize() RunConfig {
	if rc.Instrs <= 0 {
		rc.Instrs = 250_000
	}
	if rc.Seed == 0 {
		rc.Seed = 42
	}
	if rc.Frag == 0 && !rc.FragSet {
		rc.Frag = 0.1
	}
	return rc
}

// Simulate runs a preset system against the named benchmarks (one per
// core, up to four).
func Simulate(preset string, benches []string, rc RunConfig) (*Result, error) {
	rc = rc.normalize()
	sys, err := config.ByName(preset, rc.Planes, rc.BusMHz)
	if err != nil {
		return nil, err
	}
	return SimulateSystem(sys, benches, rc)
}

// SimulateSystem runs an explicit System (e.g. one with a custom
// Scheme) against the named benchmarks.
func SimulateSystem(sys *System, benches []string, rc RunConfig) (*Result, error) {
	rc = rc.normalize()
	return sim.Run(sim.Options{
		Sys: sys, Benches: benches, Instrs: rc.Instrs, Warmup: rc.Warmup,
		Frag: rc.Frag, Seed: rc.Seed, Capture: rc.Capture,
	})
}

// AreaOverhead reports the DRAM die-area fraction a scheme adds over
// baseline DDR4 (negative = saving), per the Sec. VI-C model.
func AreaOverhead(s Scheme) float64 {
	return area.Overhead(s, config.DefaultGeometry().Banks())
}

// Experiments drives the paper's figure/table reproductions with shared
// caching of simulation results.
type Experiments = exp.Runner

// ExperimentParams scales the figure harness.
type ExperimentParams = exp.Params

// NewExperiments builds a figure harness. Zero-value params use the
// defaults (250k instructions, all nine mixes).
func NewExperiments(p ExperimentParams) *Experiments {
	return exp.NewRunner(p)
}

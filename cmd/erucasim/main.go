// Command erucasim runs ERUCA simulations: one or more DRAM
// configurations from the preset registry against a SPEC2006-style mix
// or ad-hoc benchmark list, printing performance, DRAM-event and energy
// summaries. With a comma-separated -system list the runs execute
// concurrently (bounded by -parallel) and the reports print in the
// order given, byte-identical to running them one at a time.
//
// Examples:
//
//	erucasim -system vsb-ewlr-rap-ddb -mix mix0 -instrs 500000
//	erucasim -system ddr4 -bench mcf,lbm -frag 0.5
//	erucasim -system ddr4,vsb-ewlr-rap-ddb,masa8-eruca -mix mix3 -parallel 3
//	erucasim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"eruca/internal/cli"
	"eruca/internal/config"
	"eruca/internal/sim"
	"eruca/internal/workload"
)

func main() {
	var (
		system   = flag.String("system", "ddr4", "comma-separated system presets (see -list)")
		planes   = flag.Int("planes", 4, "plane count for sub-banked systems")
		bus      = flag.Float64("bus", config.DefaultBusMHz, "channel frequency (MHz)")
		instrs   = flag.Int64("instrs", 500_000, "instructions per core")
		frag     = flag.Float64("frag", 0.1, "target memory fragmentation (FMFI)")
		seed     = flag.Int64("seed", 42, "simulation seed")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent simulations for multi-system runs")
		list     = flag.Bool("list", false, "list systems, benchmarks and mixes")
	)
	var wl cli.Workload
	wl.Register("")
	var rb cli.Robust
	rb.Register()
	var tr cli.Trace
	tr.Register()
	var lg cli.Log
	lg.Register()
	flag.Parse()

	logger, err := lg.Build(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "erucasim:", err)
		os.Exit(cli.ExitUsage)
	}
	copts, wd, plan, err := rb.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "erucasim:", err)
		os.Exit(cli.ExitUsage)
	}
	tel, err := tr.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "erucasim:", err)
		os.Exit(cli.ExitUsage)
	}

	if *list {
		fmt.Println("systems:   ", strings.Join(config.RegistryNames(), " "))
		fmt.Println("benchmarks:", strings.Join(workload.Names(), " "))
		var mixes []string
		for _, m := range workload.Mixes() {
			mixes = append(mixes, m.Name)
		}
		fmt.Println("mixes:     ", strings.Join(mixes, " "))
		return
	}

	systems, err := cli.ParseSystems(*system, *planes, *bus)
	if err != nil {
		fatal(err)
	}
	benches, err := wl.Benches("mix0")
	if err != nil {
		fatal(err)
	}

	// Run all systems concurrently, bounded by -parallel; each run is
	// independent and fully deterministic, so reports print in flag
	// order regardless of completion order.
	if *parallel < 1 {
		*parallel = 1
	}
	logger.Debug("starting simulations", "systems", len(systems), "parallel", *parallel,
		"instrs", *instrs, "seed", *seed)
	sem := make(chan struct{}, *parallel)
	type outcome struct {
		res *sim.Result
		err error
	}
	outcomes := make([]outcome, len(systems))
	done := make(chan int)
	for i, sys := range systems {
		go func(i int, sys *config.System) {
			sem <- struct{}{}
			defer func() { <-sem }()
			logger.Debug("simulating", "system", sys.Name)
			res, err := sim.Run(sim.Options{
				Sys: sys, Benches: benches, Instrs: *instrs, Frag: *frag, Seed: *seed,
				Check: copts, Watchdog: wd, Faults: plan, Telemetry: tel,
			})
			outcomes[i] = outcome{res, err}
			done <- i
		}(i, sys)
	}
	for range systems {
		<-done
	}

	for i, sys := range systems {
		if i > 0 {
			fmt.Println()
		}
		if outcomes[i].res != nil {
			report(sys, benches, outcomes[i].res)
		}
		if outcomes[i].err != nil {
			// A failed run still reports its partial stats above (and
			// still flushes the trace — the events up to the failure are
			// exactly what a crash investigation wants); the first
			// failure ends the process with a classified exit code and,
			// with -crashdump, the full diagnostic payload.
			if ferr := tr.Finish(); ferr != nil {
				fmt.Fprintln(os.Stderr, "erucasim:", ferr)
			}
			rb.Exit("erucasim", outcomes[i].err, outcomes[i].res)
		}
	}
	if err := tr.Finish(); err != nil {
		fatal(err)
	}
}

func report(sys *config.System, benches []string, res *sim.Result) {
	fmt.Printf("system        %s (bus %.0fMHz, %d effective banks/rank)\n",
		sys.Name, sys.Bus.FreqMHz(), sys.EffectiveBanksPerRank())
	if res.Partial {
		fmt.Printf("NOTE          run ended early; statistics below are partial\n")
	}
	fmt.Printf("workloads     %s (FMFI %.2f, huge coverage %.0f%%)\n",
		strings.Join(benches, ","), res.AchievedFMFI, res.HugeCoverage*100)
	fmt.Printf("bus cycles    %d (%.1f us)\n", res.BusCycles, res.ElapsedNS/1000)
	for i, ipc := range res.IPC {
		fmt.Printf("core %d        %-10s IPC %.3f  MPKI %.1f\n", i, benches[i], ipc, res.MPKI[i])
	}
	d := res.DRAM
	fmt.Printf("dram          ACT %d (EWLR hits %d)  RD %d  WR %d  PRE %d (plane-conflict %d, partial %d)  REF %d\n",
		d.Acts, d.ActsEWLRHit, d.Reads, d.Writes, d.Pres, d.PlaneConfPre, d.PartialPres, d.Refreshes)
	fmt.Printf("row hit rate  %.1f%%   plane-conflict PREs %.1f%%\n",
		res.RowHitRate()*100, res.PlaneConflictPreFrac()*100)
	q1, med, q3 := res.QueueLat.Quartiles()
	fmt.Printf("read queueing mean %.1fns  q1 %.1f  med %.1f  q3 %.1f\n",
		res.QueueLat.Mean(), q1, med, q3)
	e := res.Energy
	fmt.Printf("energy (uJ)   background %.1f  act %.1f  rd/wr %.1f  refresh %.1f  total %.1f\n",
		e.BackgroundNJ/1000, e.ActNJ/1000, e.RdWrNJ/1000, e.RefreshNJ/1000, e.TotalNJ()/1000)
	if res.FaultsInjected > 0 {
		fmt.Printf("faults        %d injected\n", res.FaultsInjected)
	}
	if n := len(res.Protocol); n > 0 {
		fmt.Printf("protocol      %d logged violation(s); first: %v\n", n, res.Protocol[0])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "erucasim:", err)
	os.Exit(1)
}

// Command erucatrace captures DRAM transaction traces from a simulated
// workload and runs the paper's Fig. 4 analyses on them: plane-conflict
// classification across plane counts and the row-address locality
// profile. Traces can also be dumped as CSV for external tooling.
//
// Examples:
//
//	erucatrace -bench mcf,lbm -analyze planes
//	erucatrace -mix mix0 -analyze locality -frag 0.5
//	erucatrace -bench mcf -dump trace.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"eruca/internal/addrmap"
	"eruca/internal/cli"
	"eruca/internal/config"
	"eruca/internal/sim"
	"eruca/internal/trace"
)

func main() {
	var (
		instrs  = flag.Int64("instrs", 150_000, "instructions per core")
		frag    = flag.Float64("frag", 0.1, "memory fragmentation (FMFI)")
		seed    = flag.Int64("seed", 42, "simulation seed")
		analyze = flag.String("analyze", "planes", "analysis: planes, locality, none")
		dump    = flag.String("dump", "", "write the raw trace as CSV to this file")
		load    = flag.String("load", "", "analyze an existing CSV trace instead of simulating")
	)
	var wl cli.Workload
	wl.Register("mcf")
	var rb cli.Robust
	rb.Register()
	var tr cli.Trace
	tr.Register()
	var lg cli.Log
	lg.Register()
	flag.Parse()

	logger, err := lg.Build(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "erucatrace:", err)
		os.Exit(cli.ExitUsage)
	}
	copts, wd, plan, err := rb.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "erucatrace:", err)
		os.Exit(cli.ExitUsage)
	}
	tel, err := tr.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "erucatrace:", err)
		os.Exit(cli.ExitUsage)
	}

	var recs []trace.Record
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fatal(err)
		}
		recs, err = trace.ReadCSV(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		logger.Info("trace loaded", "transactions", len(recs), "file", *load)
	} else {
		benches, err := wl.Benches("")
		if err != nil {
			fatal(err)
		}
		res, err := sim.Run(sim.Options{
			Sys: config.Baseline(config.DefaultBusMHz), Benches: benches,
			Instrs: *instrs, Frag: *frag, Seed: *seed,
			Check: copts, Watchdog: wd, Faults: plan, Telemetry: tel,
			Capture: func(r trace.Record) { recs = append(recs, r) },
		})
		if ferr := tr.Finish(); ferr != nil && err == nil {
			fatal(ferr)
		}
		if err != nil {
			rb.Exit("erucatrace", err, res)
		}
		logger.Info("trace captured", "transactions", len(recs), "benches", strings.Join(benches, ","))
	}

	if *dump != "" {
		if err := dumpCSV(*dump, recs); err != nil {
			fatal(err)
		}
		logger.Info("trace dumped", "file", *dump)
	}

	vsb := config.VSB(4, false, false, false, config.DefaultBusMHz)
	mapper := addrmap.New(vsb)
	view := func(pa uint64) (int, int, uint32) {
		l := mapper.Map(pa)
		return l.Channel<<8 | mapper.BankID(l), l.Sub, l.Row
	}
	tm := config.DDR4Timing()
	tRC := tm.TRASns + tm.TRPns

	switch *analyze {
	case "none":
	case "planes":
		var counts []int
		for p := 2; p <= 1<<uint(mapper.RowBits()-1); p *= 2 {
			counts = append(counts, p)
		}
		pts := trace.AnalyzePlaneConflicts(recs, view, mapper.RowBits(), tRC, counts)
		fmt.Printf("%-8s %15s %18s %13s\n", "planes", "plane conflict", "no plane conflict", "overlapping")
		for _, p := range pts {
			fmt.Printf("%-8d %14.1f%% %17.1f%% %12.1f%%\n",
				p.Planes, p.PlaneConflict*100, p.NoPlaneConflict*100, p.Overlapping*100)
		}
	case "locality":
		prof := trace.LocalityProfile(recs, view, mapper.RowBits(), tRC)
		fmt.Printf("%-10s %10s\n", "top-k MSBs", "P(match)")
		for k, p := range prof {
			fmt.Printf("%-10d %9.1f%%\n", k, p*100)
		}
	default:
		fatal(fmt.Errorf("unknown analysis %q", *analyze))
	}
}

func dumpCSV(path string, recs []trace.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteCSV(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "erucatrace:", err)
	os.Exit(1)
}

package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestChaosKillRestart is the end-to-end crash-safety proof, run
// against the real binary: a daemon is SIGKILLed mid-sweep (no drain,
// no warning — exactly what a crash looks like), restarted on the same
// WAL directory, and must then (a) re-run every unfinished job to
// completion, resuming from the checkpoint blobs instead of cycle zero,
// (b) keep already-finished results fetchable, (c) answer an
// Idempotency-Key retry with the original job, and (d) produce results
// byte-identical to an uninterrupted daemon running the same specs.
//
// Multi-process and multi-second, so it only runs when asked:
//
//	ERUCA_CHAOS_RESTART=1 go test ./cmd/erucad/ -run ChaosKillRestart
//
// (`make chaos-restart` and the CI chaos-restart job set this.)
func TestChaosKillRestart(t *testing.T) {
	if os.Getenv("ERUCA_CHAOS_RESTART") == "" {
		t.Skip("set ERUCA_CHAOS_RESTART=1 to run the kill-restart chaos harness")
	}

	tmp := os.Getenv("ERUCA_CHAOS_RESTART_DIR")
	if tmp == "" {
		tmp = t.TempDir()
	} else if err := os.MkdirAll(tmp, 0o755); err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(tmp, "erucad")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build erucad: %v\n%s", err, out)
	}

	addr := freeAddr(t)
	base := "http://" + addr
	walDir := filepath.Join(tmp, "wal")
	start := func(logName string) *exec.Cmd {
		logf, err := os.Create(filepath.Join(tmp, logName))
		if err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(bin,
			"-addr", addr, "-wal", walDir,
			"-workers", "2", "-checkpoint-cycles", "100000",
			"-drain-timeout", "5s")
		cmd.Stdout, cmd.Stderr = logf, logf
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		waitHealthy(t, base)
		return cmd
	}

	// The mid-sized sweep: long enough that the kill lands mid-run, on a
	// mix of systems so recovery crosses runner groups.
	specs := []map[string]any{
		{"kind": "sim", "system": "ddr4", "mix": "mix0", "instrs": 2_000_000, "frag": 0.1},
		{"kind": "sim", "system": "vsb-ewlr-rap-ddb", "mix": "mix0", "instrs": 2_000_000, "frag": 0.1},
		{"kind": "sim", "system": "ddr4", "mix": "mix1", "instrs": 2_000_000, "frag": 0.1},
		{"kind": "sim", "system": "vsb-naive-ddb", "mix": "mix1", "instrs": 2_000_000, "frag": 0.1},
	}
	key := func(i int) string { return fmt.Sprintf("chaos-%d", i) }

	daemon := start("daemon1.log")
	ids := make([]string, len(specs))
	for i, spec := range specs {
		id, code := postJob(t, base, spec, key(i))
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, code)
		}
		ids[i] = id
	}

	// Kill only after checkpoint blobs exist (so the restart actually
	// has something to resume from) — a SIGKILL, not a drain.
	ckptDir := filepath.Join(walDir, "checkpoints")
	deadline := time.Now().Add(120 * time.Second)
	for countCkpts(ckptDir) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint blob appeared before the kill window")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := daemon.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = daemon.Wait()

	// Restart on the same WAL directory.
	daemon2 := start("daemon2.log")
	defer func() {
		_ = daemon2.Process.Signal(syscall.SIGKILL)
		_ = daemon2.Wait()
	}()
	// On failure, dump the restarted daemon's span ring next to the WAL
	// and logs: the recovery trace (re-admits, checkpoint resumes) is the
	// request-level post-mortem CI uploads as traces-daemon.json.
	// Registered after the kill defer so it runs while the daemon is up.
	defer func() {
		if !t.Failed() {
			return
		}
		resp, err := http.Get(base + "/v1/traces")
		if err != nil {
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := os.WriteFile(filepath.Join(tmp, "traces-daemon.json"), body, 0o644); err != nil {
			t.Logf("trace dump: %v", err)
		}
	}()

	// (a) Every journaled job must come back and reach done.
	results := make(map[string]string, len(ids))
	deadline = time.Now().Add(300 * time.Second)
	for _, id := range ids {
		for {
			v := getJob(t, base, id)
			if v.State == "done" {
				results[id] = v.Result
				break
			}
			if v.State == "failed" || v.State == "canceled" {
				t.Fatalf("recovered job %s ended %s: %+v", id, v.State, v.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("recovered job %s still %s", id, v.State)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// (b/resume) At least one job's progress log must show a checkpoint
	// resume — proof the recovery did not restart everything from zero.
	resumed := false
	for _, id := range ids {
		if strings.Contains(eventLog(t, base, id), "resuming") {
			resumed = true
			break
		}
	}
	if !resumed {
		t.Error("no recovered job resumed from a checkpoint")
	}

	// (c) An Idempotency-Key retry of the first spec returns the
	// original job (200, same ID) — the crash did not eat the key.
	id, code := postJob(t, base, specs[0], key(0))
	if code != http.StatusOK || id != ids[0] {
		t.Errorf("idempotent retry after crash: status %d id %s, want 200 %s", code, id, ids[0])
	}

	// (d) Byte-identical to an uninterrupted daemon.
	_ = daemon2.Process.Signal(syscall.SIGKILL)
	_ = daemon2.Wait()
	refWal := filepath.Join(tmp, "wal-ref")
	refCmd := exec.Command(bin, "-addr", addr, "-wal", refWal, "-workers", "2")
	refLog, err := os.Create(filepath.Join(tmp, "ref.log"))
	if err != nil {
		t.Fatal(err)
	}
	refCmd.Stdout, refCmd.Stderr = refLog, refLog
	if err := refCmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = refCmd.Process.Signal(syscall.SIGKILL)
		_ = refCmd.Wait()
	}()
	waitHealthy(t, base)
	for i, spec := range specs {
		rid, code := postJob(t, base, spec, key(i))
		if code != http.StatusAccepted {
			t.Fatalf("reference submit %d: status %d", i, code)
		}
		for {
			v := getJob(t, base, rid)
			if v.State == "done" {
				if v.Result != results[ids[i]] {
					t.Errorf("spec %d: recovered result differs from uninterrupted reference", i)
				}
				break
			}
			if v.State == "failed" || v.State == "canceled" {
				t.Fatalf("reference job %s ended %s", rid, v.State)
			}
			if time.Now().After(deadline) {
				t.Fatalf("reference job %s still %s", rid, v.State)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
}

// freeAddr reserves a loopback port and releases it for the daemon.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// waitHealthy polls /healthz until the daemon answers.
func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// jobView is the wire-level subset of the daemon's job JSON.
type jobView struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Result string `json:"result"`
	Error  *struct {
		Message string `json:"message"`
		Class   string `json:"class"`
	} `json:"error"`
}

func postJob(t *testing.T, base string, spec map[string]any, idemKey string) (id string, code int) {
	t.Helper()
	b, _ := json.Marshal(spec)
	req, err := http.NewRequest("POST", base+"/v1/jobs", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", idemKey)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	_ = json.NewDecoder(resp.Body).Decode(&v)
	return v.ID, resp.StatusCode
}

func getJob(t *testing.T, base, id string) jobView {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// eventLog collects a terminal job's SSE replay buffer as one string.
func eventLog(t *testing.T, base, id string) string {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: done") {
			break
		}
		if strings.HasPrefix(line, "data: ") {
			b.WriteString(line[6:])
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// countCkpts counts checkpoint blobs under dir.
func countCkpts(dir string) int {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".ckpt" {
			n++
		}
	}
	return n
}

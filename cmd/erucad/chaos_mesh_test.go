package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestChaosMeshPartitionAndKill composes the two service-tier fault
// families against real erucad processes: a DSL-driven timed network
// partition (worker w2 loses its outbound network mid-sweep via
// -chaos, gets evicted, heals, is fenced with a 410 and rejoins) AND a
// SIGKILL of worker w1 (the pre-existing crash chaos). Every job of
// the sweep must still finish through the coordinator with results
// byte-identical to an uninterrupted single-node daemon, and the
// partition must leave its fingerprints in the metrics: an eviction, a
// migration, and at least one fenced stale-epoch request. Blob
// scrubbing runs live on every member (-scrub) while all this happens.
//
// Multi-process and multi-second, so it only runs when asked:
//
//	ERUCA_CHAOS_MESH=1 go test ./cmd/erucad/ -run ChaosMesh
//
// (`make chaos-mesh` and the CI chaos-mesh job set this; CI points
// ERUCA_CHAOS_MESH_DIR at a workspace path so per-node WALs and logs
// survive as artifacts when the run fails.)
func TestChaosMeshPartitionAndKill(t *testing.T) {
	if os.Getenv("ERUCA_CHAOS_MESH") == "" {
		t.Skip("set ERUCA_CHAOS_MESH=1 to run the chaos-mesh harness")
	}

	tmp := os.Getenv("ERUCA_CHAOS_MESH_DIR")
	if tmp == "" {
		tmp = t.TempDir()
	} else if err := os.MkdirAll(tmp, 0o755); err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(tmp, "erucad")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build erucad: %v\n%s", err, out)
	}

	type member struct {
		id   string
		addr string
		peer string
		wal  string
		cmd  *exec.Cmd
	}
	var coordPeer string
	startMember := func(id string, extra ...string) *member {
		m := &member{id: id, addr: freeAddr(t), peer: freeAddr(t), wal: filepath.Join(tmp, "wal-"+id)}
		args := []string{
			"-node", id, "-addr", m.addr, "-listen-peer", m.peer,
			"-wal", m.wal, "-workers", "2", "-checkpoint-cycles", "100000",
			"-lease", "1s", "-drain-timeout", "5s", "-scrub", "1s",
		}
		if id != "c" {
			args = append(args, "-join", "http://"+coordPeer)
		}
		args = append(args, extra...)
		logf, err := os.Create(filepath.Join(tmp, "node-"+id+".log"))
		if err != nil {
			t.Fatal(err)
		}
		m.cmd = exec.Command(bin, args...)
		m.cmd.Stdout, m.cmd.Stderr = logf, logf
		if err := m.cmd.Start(); err != nil {
			t.Fatal(err)
		}
		waitHealthy(t, "http://"+m.addr)
		return m
	}

	coord := startMember("c")
	coordPeer = coord.peer
	w1 := startMember("w1")
	// w2's own -chaos plan severs its OUTBOUND network from the rest of
	// the cluster 3s after boot, for 5s: heartbeats and placement
	// reports fail, the lease lapses, and after the window closes the
	// zombie's stale-epoch heartbeat is fenced with a 410. Partitions
	// are enforced sender-side, so the coordinator can still reach w2 —
	// a true asymmetric partition. The seed makes the schedule replay.
	w2 := startMember("w2", "-chaos", "seed=7;partition@3s+5s:w2|c,w1")
	members := []*member{coord, w1, w2}
	defer func() {
		for _, m := range members {
			if m.cmd.ProcessState == nil {
				_ = m.cmd.Process.Signal(syscall.SIGKILL)
				_ = m.cmd.Wait()
			}
		}
	}()
	defer func() {
		if !t.Failed() {
			return
		}
		for _, m := range members {
			resp, err := http.Get("http://" + m.addr + "/v1/traces")
			if err != nil {
				continue
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err := os.WriteFile(filepath.Join(tmp, "traces-"+m.id+".json"), body, 0o644); err != nil {
				t.Logf("trace dump %s: %v", m.id, err)
			}
		}
	}()
	base := "http://" + coord.addr
	waitMembers(t, base, 3)

	// The sweep: six mid-sized jobs spread over the ring, big enough to
	// still be running when the partition window opens.
	var specs []map[string]any
	for _, mix := range []string{"mix0", "mix1", "mix2"} {
		for _, system := range []string{"ddr4", "vsb-ewlr-rap-ddb"} {
			specs = append(specs, map[string]any{
				"kind": "sim", "system": system, "mix": mix,
				"instrs": 1_500_000, "frag": 0.1,
			})
		}
	}
	key := func(i int) string { return fmt.Sprintf("chaos-mesh-%d", i) }
	ids := make([]string, len(specs))
	for i, spec := range specs {
		id, code := postJob(t, base, spec, key(i))
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("submit %d: status %d", i, code)
		}
		ids[i] = id
	}
	t.Logf("placements: %v", ids)

	// Crash chaos on top: SIGKILL w1 once it has checkpointed something
	// (if it owns no job the kill is still a valid membership fault).
	if owns := func() bool {
		for _, id := range ids {
			if strings.HasPrefix(id, "w1-") {
				return true
			}
		}
		return false
	}(); owns {
		deadline := time.Now().Add(120 * time.Second)
		for countCkpts(filepath.Join(w1.wal, "checkpoints")) == 0 {
			if time.Now().After(deadline) {
				t.Fatal("w1 wrote no checkpoint blob before the kill window")
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	if err := w1.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = w1.cmd.Wait()

	// Both fault families must leave their tracks: the killed member
	// and the partitioned member each evicted, their jobs migrated, and
	// the healed zombie's stale-epoch write fenced with a 410 before it
	// rejoined.
	deadline := time.Now().Add(120 * time.Second)
	for clusterMetric(t, base, "eruca_cluster_nodes_evicted") < 2 ||
		clusterMetric(t, base, "eruca_cluster_fenced_requests_total") < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("chaos left no tracks: evicted=%d migrated=%d fenced=%d",
				clusterMetric(t, base, "eruca_cluster_nodes_evicted"),
				clusterMetric(t, base, "eruca_cluster_jobs_migrated"),
				clusterMetric(t, base, "eruca_cluster_fenced_requests_total"))
		}
		time.Sleep(50 * time.Millisecond)
	}
	if m := clusterMetric(t, base, "eruca_cluster_jobs_migrated"); m < 1 {
		t.Errorf("eruca_cluster_jobs_migrated = %d, want >= 1", m)
	}

	// Every original job ID finishes through the coordinator despite
	// one member dead and one partitioned-then-rejoined.
	results := make(map[string]string, len(ids))
	for _, id := range ids {
		results[id] = pollDone(t, base, id, 300*time.Second)
	}

	// Byte-identical to an uninterrupted single-node daemon.
	refAddr := freeAddr(t)
	refLog, err := os.Create(filepath.Join(tmp, "ref.log"))
	if err != nil {
		t.Fatal(err)
	}
	ref := exec.Command(bin, "-addr", refAddr, "-wal", filepath.Join(tmp, "wal-ref"), "-workers", "2")
	ref.Stdout, ref.Stderr = refLog, refLog
	if err := ref.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = ref.Process.Signal(syscall.SIGKILL)
		_ = ref.Wait()
	}()
	refBase := "http://" + refAddr
	waitHealthy(t, refBase)
	for i, spec := range specs {
		rid, code := postJob(t, refBase, spec, key(i))
		if code != http.StatusAccepted {
			t.Fatalf("reference submit %d: status %d", i, code)
		}
		if got := pollDone(t, refBase, rid, 300*time.Second); got != results[ids[i]] {
			t.Errorf("spec %d: chaos-mesh result differs from uninterrupted single-node reference", i)
		}
	}
}

package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestChaosClusterKillMembers is the cluster-wide fault-tolerance
// proof, run against real erucad processes: a 3-node cluster (one
// coordinator, two workers) takes a sweep of jobs placed across the
// ring, a randomly chosen worker is SIGKILLed mid-sweep — after its
// checkpoint blobs have replicated, no drain, no leave — and the
// cluster must then (a) evict the dead member on lease expiry and
// re-enqueue its jobs on survivors (visible as
// eruca_cluster_nodes_evicted >= 1 and eruca_cluster_jobs_migrated >=
// 1), (b) keep every original job ID answering through the
// coordinator's alias table, from the coordinator AND the surviving
// worker, and (c) finish the whole sweep with results byte-identical
// to an uninterrupted single-node daemon running the same specs.
//
// Multi-process and multi-second, so it only runs when asked:
//
//	ERUCA_CHAOS_CLUSTER=1 go test ./cmd/erucad/ -run ChaosCluster
//
// (`make chaos-cluster` and the CI chaos-cluster job set this; CI
// points ERUCA_CHAOS_CLUSTER_DIR at a workspace path so per-node WALs
// and logs survive as artifacts when the run fails.)
func TestChaosClusterKillMembers(t *testing.T) {
	if os.Getenv("ERUCA_CHAOS_CLUSTER") == "" {
		t.Skip("set ERUCA_CHAOS_CLUSTER=1 to run the cluster chaos harness")
	}

	tmp := os.Getenv("ERUCA_CHAOS_CLUSTER_DIR")
	if tmp == "" {
		tmp = t.TempDir()
	} else if err := os.MkdirAll(tmp, 0o755); err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(tmp, "erucad")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build erucad: %v\n%s", err, out)
	}

	type member struct {
		id   string
		addr string // public API
		peer string // peer protocol
		wal  string
		cmd  *exec.Cmd
	}
	var coordPeer string
	startMember := func(id string, logName string) *member {
		m := &member{id: id, addr: freeAddr(t), peer: freeAddr(t), wal: filepath.Join(tmp, "wal-"+id)}
		args := []string{
			"-node", id, "-addr", m.addr, "-listen-peer", m.peer,
			"-wal", m.wal, "-workers", "2", "-checkpoint-cycles", "100000",
			"-lease", "1s", "-drain-timeout", "5s",
		}
		if id != "c" {
			args = append(args, "-join", "http://"+coordPeer)
		}
		logf, err := os.Create(filepath.Join(tmp, logName))
		if err != nil {
			t.Fatal(err)
		}
		m.cmd = exec.Command(bin, args...)
		m.cmd.Stdout, m.cmd.Stderr = logf, logf
		if err := m.cmd.Start(); err != nil {
			t.Fatal(err)
		}
		waitHealthy(t, "http://"+m.addr)
		return m
	}

	coord := startMember("c", "node-c.log") // no -join: the coordinator
	coordPeer = coord.peer
	workers := []*member{startMember("w1", "node-w1.log"), startMember("w2", "node-w2.log")}
	members := append([]*member{coord}, workers...)
	defer func() {
		for _, m := range members {
			if m.cmd.ProcessState == nil {
				_ = m.cmd.Process.Signal(syscall.SIGKILL)
				_ = m.cmd.Wait()
			}
		}
	}()
	// On failure, dump each surviving member's span ring next to the WALs
	// and logs: the traces show the request-level story (placements,
	// forwards, the eviction's migrations and re-admits) that the logs
	// only hint at. Registered after the kill defer so it runs first,
	// while the survivors still answer. CI uploads traces-*.json.
	defer func() {
		if !t.Failed() {
			return
		}
		for _, m := range members {
			resp, err := http.Get("http://" + m.addr + "/v1/traces")
			if err != nil {
				continue // the victim's ring died with it
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err := os.WriteFile(filepath.Join(tmp, "traces-"+m.id+".json"), body, 0o644); err != nil {
				t.Logf("trace dump %s: %v", m.id, err)
			}
		}
	}()
	base := "http://" + coord.addr

	// All three members must be in the ring before the sweep starts.
	waitMembers(t, base, 3)

	// The sweep: eight mid-sized jobs across mixes and systems, placed
	// over the ring by spec hash.
	var specs []map[string]any
	for _, mix := range []string{"mix0", "mix1", "mix2", "mix3"} {
		for _, system := range []string{"ddr4", "vsb-ewlr-rap-ddb"} {
			specs = append(specs, map[string]any{
				"kind": "sim", "system": system, "mix": mix,
				"instrs": 2_000_000, "frag": 0.1,
			})
		}
	}
	key := func(i int) string { return fmt.Sprintf("chaos-cluster-%d", i) }
	ids := make([]string, len(specs))
	for i, spec := range specs {
		id, code := postJob(t, base, spec, key(i))
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("submit %d: status %d", i, code)
		}
		ids[i] = id
	}

	// Victim: a random worker that owns at least one job of the sweep
	// (the ID prefix is the placement).
	owns := func(m *member) bool {
		for _, id := range ids {
			if strings.HasPrefix(id, m.id+"-") {
				return true
			}
		}
		return false
	}
	var candidates []*member
	for _, w := range workers {
		if owns(w) {
			candidates = append(candidates, w)
		}
	}
	if len(candidates) == 0 {
		t.Fatalf("no worker owns any job; placements: %v", ids)
	}
	victim := candidates[rand.Intn(len(candidates))]
	t.Logf("victim: %s (placements: %v)", victim.id, ids)

	// Kill only after the victim has written a checkpoint blob — so the
	// migrated job genuinely has something to resume from — and with
	// SIGKILL: no drain, no goodbye, exactly what a crashed member
	// looks like.
	deadline := time.Now().Add(120 * time.Second)
	for countCkpts(filepath.Join(victim.wal, "checkpoints")) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("victim wrote no checkpoint blob before the kill window")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := victim.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = victim.cmd.Wait()

	// (a) Lease expiry must evict the victim and migrate its jobs.
	deadline = time.Now().Add(60 * time.Second)
	for clusterMetric(t, base, "eruca_cluster_nodes_evicted") < 1 ||
		clusterMetric(t, base, "eruca_cluster_jobs_migrated") < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("no eviction/migration after the kill: evicted=%d migrated=%d",
				clusterMetric(t, base, "eruca_cluster_nodes_evicted"),
				clusterMetric(t, base, "eruca_cluster_jobs_migrated"))
		}
		time.Sleep(50 * time.Millisecond)
	}

	// (b) Every original job ID completes, reachable both through the
	// coordinator and through the surviving worker (proxy + alias).
	var survivor *member
	for _, w := range workers {
		if w != victim {
			survivor = w
		}
	}
	results := make(map[string]string, len(ids))
	for _, id := range ids {
		results[id] = pollDone(t, base, id, 300*time.Second)
		if via := pollDone(t, "http://"+survivor.addr, id, 60*time.Second); via != results[id] {
			t.Errorf("job %s: survivor %s returned a different result than the coordinator", id, survivor.id)
		}
	}

	// (c) Byte-identical to an uninterrupted single-node daemon.
	refAddr := freeAddr(t)
	refLog, err := os.Create(filepath.Join(tmp, "ref.log"))
	if err != nil {
		t.Fatal(err)
	}
	ref := exec.Command(bin, "-addr", refAddr, "-wal", filepath.Join(tmp, "wal-ref"), "-workers", "2")
	ref.Stdout, ref.Stderr = refLog, refLog
	if err := ref.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = ref.Process.Signal(syscall.SIGKILL)
		_ = ref.Wait()
	}()
	refBase := "http://" + refAddr
	waitHealthy(t, refBase)
	for i, spec := range specs {
		rid, code := postJob(t, refBase, spec, key(i))
		if code != http.StatusAccepted {
			t.Fatalf("reference submit %d: status %d", i, code)
		}
		if got := pollDone(t, refBase, rid, 300*time.Second); got != results[ids[i]] {
			t.Errorf("spec %d: cluster result differs from uninterrupted single-node reference", i)
		}
	}
}

// waitMembers polls the coordinator's cluster info until n members are
// in the ring.
func waitMembers(t *testing.T, base string, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/cluster/info")
		if err == nil {
			var info struct {
				Members []struct{ ID string } `json:"members"`
			}
			err = json.NewDecoder(resp.Body).Decode(&info)
			resp.Body.Close()
			if err == nil && len(info.Members) >= n {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never reached %d members", n)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// pollDone polls a job until done, tolerating transport errors and the
// 503 window while an evicted member's jobs are re-homed.
func pollDone(t *testing.T, base, id string, within time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err == nil {
			var v jobView
			err = json.NewDecoder(resp.Body).Decode(&v)
			resp.Body.Close()
			if err == nil && resp.StatusCode == http.StatusOK {
				switch v.State {
				case "done":
					return v.Result
				case "failed", "canceled":
					t.Fatalf("job %s ended %s: %+v", id, v.State, v.Error)
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not done within %s", id, within)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// clusterMetric scrapes one integer metric from a node's /metrics.
func clusterMetric(t *testing.T, base, name string) int {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var v int
		if n, _ := fmt.Sscanf(sc.Text(), name+" %d", &v); n == 1 {
			return v
		}
	}
	return -1
}

// Command erucad serves ERUCA simulations over HTTP: submit JSON job
// specs (single runs or full paper sweeps), poll for results, stream
// live progress over SSE, and scrape Prometheus metrics. Concurrent
// duplicate submissions collapse to one simulation through the shared
// singleflight runner, completed specs are served from a
// content-addressed result cache, and SIGTERM drains gracefully —
// admission stops, in-flight and queued jobs finish, and the cache is
// flushed to disk for the next boot. When the drain deadline passes
// first, remaining jobs are journaled as interrupted and canceled
// rather than hanging the shutdown.
//
// With -wal the daemon is crash-safe: submissions are journaled before
// they are acknowledged, in-flight simulations checkpoint periodically,
// and a restarted daemon replays the journal — finished jobs keep their
// results, unfinished jobs re-run from their last checkpoint, and
// Idempotency-Key retries land on the original jobs.
//
// Examples:
//
//	erucad -addr :8080 -cache eruca-cache.json
//	erucad -addr :8080 -wal /var/lib/eruca/wal -drain-timeout 30s
//	curl -XPOST localhost:8080/v1/jobs -d '{"kind":"sim","system":"ddr4","mix":"mix0","frag":0.1}'
//	curl localhost:8080/v1/jobs/job-000001
//	curl -N localhost:8080/v1/jobs/job-000001/events
//	curl localhost:8080/v1/jobs/job-000001/telemetry
//	curl -N 'localhost:8080/v1/jobs/job-000001/telemetry?sse=1'
//	curl -XDELETE localhost:8080/v1/jobs/job-000001
//	curl localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"eruca/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		workers  = flag.Int("workers", 4, "job worker-pool width")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent simulations per runner group")
		queueMax = flag.Int("queue", 64, "job queue bound (admission control)")
		cacheMax = flag.Int("cache-entries", 256, "in-memory result cache entries")
		cache    = flag.String("cache", "", "persist the result cache to this file across restarts")
		walDir   = flag.String("wal", "", "crash-safety directory: job journal + simulation checkpoints")
		ckptEach = flag.Int64("checkpoint-cycles", 50_000, "simulation checkpoint cadence in bus cycles (with -wal)")
		drainFor = flag.Duration("drain-timeout", 30*time.Second, "graceful drain deadline on SIGTERM/SIGINT; past it, remaining jobs are journaled as interrupted and canceled")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "erucad: ", log.LstdFlags)
	srv, err := server.New(server.Config{
		Workers: *workers, SimParallel: *parallel,
		QueueMax: *queueMax, CacheMax: *cacheMax, CachePath: *cache,
		WALDir: *walDir, CheckpointCycles: *ckptEach,
		Pprof: *pprofOn,
		Logf:  logger.Printf,
	})
	if err != nil {
		logger.Fatal(err)
	}
	srv.Start()

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", *addr)
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		logger.Printf("%v: draining (deadline %s)", sig, *drainFor)
	case err := <-errc:
		logger.Fatal(err)
	}

	// Graceful shutdown: stop admitting, finish queued + in-flight
	// jobs, flush the cache, then close the listener. A second signal
	// hard-cancels immediately.
	ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	go func() {
		<-sigc
		logger.Printf("second signal: hard stop")
		cancel()
	}()
	if err := srv.Drain(ctx); err != nil {
		logger.Printf("drain: %v", err)
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("shutdown: %v", err)
	}
	fmt.Fprintln(os.Stderr, "erucad: bye")
}

// Command erucad serves ERUCA simulations over HTTP: submit JSON job
// specs (single runs or full paper sweeps), poll for results, stream
// live progress over SSE, and scrape Prometheus metrics. Concurrent
// duplicate submissions collapse to one simulation through the shared
// singleflight runner, completed specs are served from a
// content-addressed result cache, and SIGTERM drains gracefully —
// admission stops, in-flight and queued jobs finish, and the cache is
// flushed to disk for the next boot. When the drain deadline passes
// first, remaining jobs are journaled as interrupted and canceled
// rather than hanging the shutdown.
//
// With -wal the daemon is crash-safe: submissions are journaled before
// they are acknowledged, in-flight simulations checkpoint periodically,
// and a restarted daemon replays the journal — finished jobs keep their
// results, unfinished jobs re-run from their last checkpoint, and
// Idempotency-Key retries land on the original jobs.
//
// With -listen-peer the daemon becomes a cluster member: a node
// started without -join is the coordinator, nodes started with
// -join=http://coord-peer-addr register under heartbeat leases.
// Submissions land on the spec hash's ring owner from any node, by-ID
// requests (status, SSE events, cancel) proxy to wherever the job
// lives, result-cache lookups read through to the hash's shard, and a
// member that stops heartbeating is evicted — its jobs re-enqueued on
// survivors from their replicated checkpoints.
//
// Examples:
//
//	erucad -addr :8080 -cache eruca-cache.json
//	erucad -addr :8080 -wal /var/lib/eruca/wal -drain-timeout 30s
//	erucad -node n1 -addr :8080 -listen-peer :9080 -wal /var/lib/eruca/n1
//	erucad -node n2 -addr :8081 -listen-peer :9081 -join http://127.0.0.1:9080 -wal /var/lib/eruca/n2
//	erucad -node n2 -addr :8081 -listen-peer :9081 -join http://127.0.0.1:9080 -wal /var/lib/eruca/n2 -chaos 'seed=7;partition@5s+3s:n2|n1' -scrub 30s
//	curl -XPOST localhost:8080/v1/jobs -d '{"kind":"sim","system":"ddr4","mix":"mix0","frag":0.1}'
//	curl localhost:8080/v1/jobs/job-000001
//	curl -N localhost:8080/v1/jobs/job-000001/events
//	curl localhost:8080/v1/jobs/job-000001/telemetry
//	curl -N 'localhost:8080/v1/jobs/job-000001/telemetry?sse=1'
//	curl -XDELETE localhost:8080/v1/jobs/job-000001
//	curl localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"eruca/internal/cli"
	"eruca/internal/cluster"
	"eruca/internal/obs"
	"eruca/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		workers  = flag.Int("workers", 4, "job worker-pool width")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent simulations per runner group")
		queueMax = flag.Int("queue", 64, "job queue bound (admission control)")
		cacheMax = flag.Int("cache-entries", 256, "in-memory result cache entries")
		cache    = flag.String("cache", "", "persist the result cache to this file across restarts")
		walDir   = flag.String("wal", "", "crash-safety directory: job journal + simulation checkpoints")
		ckptEach = flag.Int64("checkpoint-cycles", 50_000, "simulation checkpoint cadence in bus cycles (with -wal)")
		drainFor = flag.Duration("drain-timeout", 30*time.Second, "graceful drain deadline on SIGTERM/SIGINT; past it, remaining jobs are journaled as interrupted and canceled")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")

		nodeID   = flag.String("node", "", "cluster node ID (job-ID prefix); required with -listen-peer")
		peerAddr = flag.String("listen-peer", "", "peer-protocol listen address; enables cluster mode")
		joinURL  = flag.String("join", "", "coordinator peer URL to join (empty with -listen-peer = be the coordinator)")
		leaseTTL = flag.Duration("lease", 3*time.Second, "heartbeat lease TTL; a member silent this long is evicted and its jobs re-enqueued on survivors")

		spans = flag.Int("spans", obs.DefaultRing, "trace span-ring capacity; 0 disables request tracing entirely")

		logFlags   cli.Log
		chaosFlags cli.Chaos
	)
	logFlags.Register()
	chaosFlags.Register()
	flag.Parse()

	logger, err := logFlags.Build(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "erucad: %v\n", err)
		os.Exit(cli.ExitUsage)
	}
	mesh, err := chaosFlags.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "erucad: -chaos: %v\n", err)
		os.Exit(cli.ExitUsage)
	}
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	var tracer *obs.Tracer
	if *spans > 0 {
		tracer = obs.NewTracer(*nodeID, *spans)
	}
	scfg := server.Config{
		Workers: *workers, SimParallel: *parallel,
		QueueMax: *queueMax, CacheMax: *cacheMax, CachePath: *cache,
		WALDir: *walDir, CheckpointCycles: *ckptEach,
		ScrubEvery: chaosFlags.ScrubEvery,
		Pprof:      *pprofOn,
		Log:        logger,
		Tracer:     tracer,
	}

	var (
		srv     *server.Server
		handler http.Handler
		node    *cluster.Node
	)
	if *peerAddr != "" {
		if *nodeID == "" {
			fatal("-listen-peer requires -node")
		}
		node, err = cluster.New(cluster.Config{
			NodeID:     *nodeID,
			PublicAddr: advertised(*addr),
			PeerAddr:   advertised(*peerAddr),
			JoinURL:    *joinURL,
			LeaseTTL:   *leaseTTL,
			Chaos:      mesh,
			Log:        logger,
		}, scfg)
		if err != nil {
			fatal("cluster boot failed", "err", err)
		}
		srv, handler = node.Server(), node.Handler()
	} else {
		if srv, err = server.New(scfg); err != nil {
			fatal("server boot failed", "err", err)
		}
		handler = srv.Handler()
	}
	srv.Start()
	if mesh != nil {
		// Anchor partition windows at process start, not first request.
		mesh.Arm()
		logger.Warn("chaos mesh armed", "plan", mesh.String())
	}

	// Listeners pass through the chaos mesh so inbound faults (stalled
	// peers) are injectable too; a nil mesh returns them unchanged.
	errc := make(chan error, 2)
	var ps *http.Server
	if node != nil {
		pln, lerr := net.Listen("tcp", *peerAddr)
		if lerr != nil {
			fatal("peer listen failed", "addr", *peerAddr, "err", lerr)
		}
		ps = &http.Server{Handler: node.PeerHandler()}
		go func() {
			logger.Info("peer protocol listening", "addr", *peerAddr, "node", *nodeID)
			errc <- ps.Serve(mesh.Listener(*nodeID, pln))
		}()
		node.Start()
	}

	hln, lerr := net.Listen("tcp", *addr)
	if lerr != nil {
		fatal("listen failed", "addr", *addr, "err", lerr)
	}
	hs := &http.Server{Handler: handler}
	go func() {
		logger.Info("listening", "addr", *addr, "tracing", tracer != nil)
		errc <- hs.Serve(mesh.Listener(*nodeID, hln))
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		logger.Info("draining on signal", "signal", sig.String(), "deadline", drainFor.String())
	case err := <-errc:
		fatal("listener failed", "err", err)
	}

	// Graceful shutdown: stop admitting, finish queued + in-flight
	// jobs, flush the cache, then close the listener. A second signal
	// hard-cancels immediately.
	ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	go func() {
		<-sigc
		logger.Warn("second signal: hard stop")
		cancel()
	}()
	if err := srv.Drain(ctx); err != nil {
		logger.Warn("drain incomplete", "err", err)
	}
	if node != nil {
		// After the drain (no jobs left to hand over): leave the cluster
		// so the coordinator reclaims our ring shard immediately.
		node.Stop()
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("shutdown", "err", err)
	}
	if ps != nil {
		if err := ps.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Warn("peer shutdown", "err", err)
		}
	}
	logger.Info("bye")
}

// advertised turns a listen address into a peer-reachable one: an
// empty or wildcard host becomes 127.0.0.1 (single-machine clusters;
// multi-host deployments pass explicit host:port listen addresses).
func advertised(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}

// Command erucabench regenerates the tables and figures of the ERUCA
// paper's evaluation. Each experiment prints a text table alongside the
// paper's reported numbers for comparison.
//
// Examples:
//
//	erucabench -exp fig12 -instrs 250000
//	erucabench -exp all -frag 0.1 -parallel 8
//	erucabench -exp fig13a -frag 0.5 -mixes mix0,mix2,mix4,mix6
//	erucabench -exp fig12 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"eruca/internal/check"
	"eruca/internal/cli"
	"eruca/internal/exp"
	"eruca/internal/search"
	"eruca/internal/workload"
)

func main() {
	os.Exit(run())
}

// run holds the whole program so deferred profile writers execute even
// on failure exits (os.Exit in main would skip them).
func run() int {
	var (
		which    = flag.String("exp", "all", "experiment: tab1, tab2, tab3, fig4, fig11, fig12, fig13a, fig13b, fig14, fig15, fig16a, fig16b, locality, ablations, attribution, search, all")
		planes   = flag.Int("planes", 4, "plane count for the attribution ladder")
		instrs   = flag.Int64("instrs", 250_000, "measured instructions per core")
		warmup   = flag.Int64("warmup", 0, "warmup instructions per core (default instrs/2)")
		seed     = flag.Int64("seed", 42, "simulation seed")
		frag     = flag.Float64("frag", 0.1, "memory fragmentation (FMFI)")
		mixes    = flag.String("mixes", "", "comma-separated mix subset (default all nine)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent simulations (tables are identical at any setting)")
		quiet    = flag.Bool("q", false, "suppress progress output")
		chart    = flag.Bool("chart", false, "render numeric results as bar charts too")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	var rb cli.Robust
	rb.Register()
	var tr cli.Trace
	tr.Register()
	var sr cli.Search
	sr.Register()
	var lg cli.Log
	lg.Register()
	flag.Parse()

	logger, err := lg.Build(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "erucabench:", err)
		return cli.ExitUsage
	}
	copts, wd, plan, err := rb.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "erucabench:", err)
		return cli.ExitUsage
	}
	tel, err := tr.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "erucabench:", err)
		return cli.ExitUsage
	}
	defer func() {
		if err := tr.Finish(); err != nil {
			fmt.Fprintln(os.Stderr, "erucabench:", err)
		}
	}()

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintln(os.Stderr, "erucabench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "erucabench:", err)
			return 1
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprof == "" {
			return
		}
		f, err := os.Create(*memprof)
		if err != nil {
			fmt.Fprintln(os.Stderr, "erucabench:", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "erucabench:", err)
		}
	}()

	p := exp.Params{Instrs: *instrs, Warmup: *warmup, Seed: *seed, Parallel: *parallel,
		Watchdog: wd, Faults: plan, Telemetry: tel}
	if copts != nil {
		p.Check = copts.Mode
	}
	p.Mixes, err = cli.ParseMixes(*mixes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "erucabench:", err)
		return cli.ExitUsage
	}
	if !*quiet {
		p.Log = func(s string) { logger.Info(s) }
	}
	// -exp search is the autotuner entry: it explores the -search-dims
	// space instead of replaying a fixed figure, printing the Pareto
	// frontier table (and scatter with -chart). Deterministic in
	// (-search-*, -seed): byte-identical output at any -parallel.
	if *which == "search" {
		mixName := "mix0"
		if len(p.Mixes) > 0 {
			mixName = p.Mixes[0]
		}
		spec, err := sr.Spec(mixName, *frag, 0, *seed, *instrs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "erucabench:", err)
			return cli.ExitUsage
		}
		mix, err := workload.MixByName(mixName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "erucabench:", err)
			return cli.ExitUsage
		}
		ev := search.NewRunnerEval(p, mix, *frag, 0)
		start := time.Now()
		res, err := search.Run(context.Background(), spec, search.Options{
			Eval: ev, Parallel: *parallel, Log: p.Log,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "erucabench: search:", err)
			cli.WriteCrashDump(rb.CrashDump, err, nil)
			return cli.ExitCode(err)
		}
		fmt.Println(res.Table().Format())
		if *chart {
			if c := res.Chart(); c != "" {
				fmt.Println(c)
			}
		}
		if !*quiet {
			launched, joined := ev.Counters()
			fmt.Fprintf(os.Stderr, "  [search evaluated %d points: %d simulations, %d cache joins, %.1fs]\n",
				res.PointsEvaluated, launched, joined, time.Since(start).Seconds())
		}
		return cli.ExitOK
	}

	r := exp.NewRunner(p)

	type experiment struct {
		name string
		run  func() (*exp.Table, error)
	}
	static := func(t *exp.Table) func() (*exp.Table, error) {
		return func() (*exp.Table, error) { return t, nil }
	}
	all := []experiment{
		{"tab1", static(exp.Tab1())},
		{"tab2", static(exp.Tab2())},
		{"tab3", static(exp.Tab3())},
		{"fig4", func() (*exp.Table, error) { return r.Fig4(*frag) }},
		{"locality", func() (*exp.Table, error) { return r.Locality(*frag) }},
		{"fig11", static(exp.Fig11())},
		{"fig12", func() (*exp.Table, error) { return r.Fig12(*frag) }},
		{"fig13a", func() (*exp.Table, error) { return r.Fig13a(*frag) }},
		{"fig13b", func() (*exp.Table, error) { return r.Fig13b(*frag) }},
		{"fig14", func() (*exp.Table, error) { return r.Fig14(*frag) }},
		{"fig15", func() (*exp.Table, error) { return r.Fig15(*frag) }},
		{"fig16a", func() (*exp.Table, error) { return r.Fig16a(*frag) }},
		{"fig16b", func() (*exp.Table, error) { return r.Fig16b(*frag) }},
		{"ablations", func() (*exp.Table, error) { return r.Ablations(*frag) }},
		{"attribution", func() (*exp.Table, error) { return r.Attribution(*planes, *frag) }},
		{"repair", static(exp.Repair())},
		{"gddr5", func() (*exp.Table, error) { return r.GDDR5(*frag) }},
	}

	selected := all
	if *which != "all" {
		selected = nil
		for _, e := range all {
			if e.name == *which {
				selected = append(selected, e)
			}
		}
		if len(selected) == 0 {
			fmt.Fprintf(os.Stderr, "erucabench: unknown experiment %q\n", *which)
			return 2
		}
	}

	// Experiments run to completion even when jobs fail: a *exp.SweepError
	// still carries an annotated table (ERR cells), so it prints, the
	// remaining experiments still run, and the process exits non-zero with
	// the first failure's classified code.
	exit := cli.ExitOK
	var firstErr error
	for _, e := range selected {
		start := time.Now()
		t, err := e.run()
		if t != nil {
			fmt.Println(t.Format())
			if *chart {
				if c := t.Chart(); c != "" {
					fmt.Println(c)
				}
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "erucabench: %s: %v\n", e.name, err)
			if firstErr == nil {
				firstErr = err
				exit = cli.ExitCode(err)
			}
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "  [%s took %.1fs]\n", e.name, time.Since(start).Seconds())
		}
	}
	// Log-mode checker feed: every violation recorded across the cached
	// results, for the run log and the crash dump.
	if lines := r.Protocol(); len(lines) > 0 {
		fmt.Fprintf(os.Stderr, "erucabench: %d protocol violation(s) logged:\n", len(lines))
		for _, l := range lines {
			fmt.Fprintln(os.Stderr, "  "+l)
		}
		if firstErr == nil && p.Check == check.Fail {
			exit = cli.ExitProtocol
		}
	}
	if firstErr != nil {
		cli.WriteCrashDump(rb.CrashDump, firstErr, nil)
	}
	return exit
}

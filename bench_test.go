// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the design choices called out in
// DESIGN.md and micro-benchmarks of the hot simulator paths.
//
// The figure benchmarks run scaled-down versions (fewer instructions,
// a mix subset) so the whole suite finishes in minutes; cmd/erucabench
// runs the full-scale versions. Figures of merit (speedups, conflict
// fractions) are attached via b.ReportMetric, so
//
//	go test -bench=Fig -benchtime=1x
//
// prints the reproduced numbers next to the timing.
package eruca_test

import (
	"strconv"
	"testing"

	"eruca"

	"eruca/internal/addrmap"
	"eruca/internal/cache"
	"eruca/internal/config"
	"eruca/internal/core"
	"eruca/internal/exp"
	"eruca/internal/sim"
	"eruca/internal/workload"
)

// benchParams scales figure reproductions for bench runs.
func benchParams() exp.Params {
	return exp.Params{Instrs: 40_000, Seed: 42, Mixes: []string{"mix0", "mix5"}}
}

const benchFrag = 0.1

func reportGMean(b *testing.B, r *exp.Runner, sys *config.System) {
	b.Helper()
	g, err := r.GMeanNormWS(sys, benchFrag)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(g, "normWS:"+sys.Name)
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := len(config.GenerationSpecs()); got != 4 {
			b.Fatalf("generations = %d", got)
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(benchParams())
		t, err := r.Fig4(benchFrag)
		if err != nil {
			b.Fatal(err)
		}
		two, _ := strconv.ParseFloat(t.Rows[0][1][:len(t.Rows[0][1])-1], 64)
		b.ReportMetric(two, "conflict%@2planes")
	}
}

func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := exp.Fig11()
		if len(t.Rows) != 4 {
			b.Fatal("fig11 rows")
		}
	}
	sys, _ := eruca.NewSystem("vsb-ewlr-rap-ddb", 4, 0)
	b.ReportMetric(eruca.AreaOverhead(sys.Scheme)*100, "area%@4P")
}

func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(benchParams())
		reportGMean(b, r, config.VSB(4, false, false, false, config.DefaultBusMHz))
		reportGMean(b, r, config.VSB(4, true, true, true, config.DefaultBusMHz))
		reportGMean(b, r, config.Ideal32(config.DefaultBusMHz))
	}
}

func BenchmarkFig13a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(benchParams())
		for _, planes := range []int{2, 16} {
			reportGMean(b, r, config.VSB(planes, true, true, true, config.DefaultBusMHz))
		}
	}
}

func BenchmarkFig13b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(benchParams())
		t, err := r.Fig13b(benchFrag)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 4 {
			b.Fatal("fig13b rows")
		}
	}
}

func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(benchParams())
		for _, mhz := range []float64{1333, 2400} {
			reportGMean(b, r, config.VSB(4, true, true, true, mhz))
		}
	}
}

func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(benchParams())
		reportGMean(b, r, config.HalfDRAM(config.DefaultBusMHz))
		reportGMean(b, r, config.MASA(8, config.DefaultBusMHz))
		reportGMean(b, r, config.MASAERUCA(8, 4, true, config.DefaultBusMHz))
	}
}

func BenchmarkFig16a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(benchParams())
		t, err := r.Fig16a(benchFrag)
		if err != nil {
			b.Fatal(err)
		}
		mean, _ := strconv.ParseFloat(t.Rows[0][1], 64)
		b.ReportMetric(mean, "ddr4-qlat-ns")
	}
}

func BenchmarkFig16b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(benchParams())
		if _, err := r.Fig16b(benchFrag); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations of DESIGN.md design choices ---

func ablationRun(b *testing.B, sys *config.System) float64 {
	b.Helper()
	res, err := sim.Run(sim.Options{
		Sys: sys, Benches: []string{"mcf", "lbm", "omnetpp", "gemsFDTD"},
		Instrs: 60_000, Frag: benchFrag, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	return float64(res.BusCycles)
}

// Plane-ID bit placement (Fig. 9 #1 vs #2) under EWLR without RAP.
func BenchmarkAblationPlaneBits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		low := config.VSB(4, true, false, true, config.DefaultBusMHz) // PlaneBitsLow by rule
		high := config.VSB(4, true, false, true, config.DefaultBusMHz)
		high.Scheme.PlaneBits = config.PlaneBitsHigh
		b.ReportMetric(ablationRun(b, low), "cycles-planebits-low")
		b.ReportMetric(ablationRun(b, high), "cycles-planebits-high")
	}
}

// EWLR offset width: more LWL_SEL latch bits widen the hit window at
// higher latch cost.
func BenchmarkAblationEWLRWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, bits := range []int{2, 3, 4} {
			sys := config.VSB(4, true, true, true, config.DefaultBusMHz)
			sys.Scheme.EWLRBits = bits
			b.ReportMetric(ablationRun(b, sys), "cycles-ewlr"+strconv.Itoa(bits))
		}
	}
}

// Sub-bank select hashing: XOR-folded vs a plain dedicated bit.
func BenchmarkAblationSubbankHash(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hashed := config.VSB(4, true, true, true, config.DefaultBusMHz)
		plain := config.VSB(4, true, true, true, config.DefaultBusMHz)
		plain.Scheme.SubHashDisabled = true
		b.ReportMetric(ablationRun(b, hashed), "cycles-subhash")
		b.ReportMetric(ablationRun(b, plain), "cycles-plainsub")
	}
}

// Page policy: adaptive open (timeout) vs keep-open vs near-closed.
func BenchmarkAblationPagePolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, idle := range []int{0, 1200, 40} {
			sys := config.VSB(4, true, true, true, config.DefaultBusMHz)
			sys.Ctrl.ClosePageIdleCK = idle
			b.ReportMetric(ablationRun(b, sys), "cycles-idle"+strconv.Itoa(idle))
		}
	}
}

// Scheduler: FR-FCFS (row hits first) vs plain FCFS.
func BenchmarkAblationScheduler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		frfcfs := config.VSB(4, true, true, true, config.DefaultBusMHz)
		fcfs := config.VSB(4, true, true, true, config.DefaultBusMHz)
		fcfs.Ctrl.HitFirstDisabled = true
		b.ReportMetric(ablationRun(b, frfcfs), "cycles-frfcfs")
		b.ReportMetric(ablationRun(b, fcfs), "cycles-fcfs")
	}
}

// Two-command windows at 2.4GHz: enforcing tTCW/tTWTRW vs an idealized
// (unbuildable) dual bus.
func BenchmarkAblationTTCW(b *testing.B) {
	for i := 0; i < b.N; i++ {
		real := config.VSB(4, true, true, true, 2400)
		ideal := config.VSB(4, true, true, true, 2400)
		ideal.CT.TwoCommandWindowsOn = false
		ideal.CT.TCW = 0
		ideal.CT.TWTRW = 0
		b.ReportMetric(ablationRun(b, real), "cycles-ttcw")
		b.ReportMetric(ablationRun(b, ideal), "cycles-nottcw")
	}
}

// --- Micro-benchmarks of hot paths ---

func BenchmarkAddrMap(b *testing.B) {
	m := addrmap.New(config.VSB(4, true, true, true, config.DefaultBusMHz))
	var sink addrmap.Loc
	for i := 0; i < b.N; i++ {
		sink = m.Map(uint64(i) * 0x9E3779B9 & (1<<35 - 1))
	}
	_ = sink
}

func BenchmarkPlaneDecide(b *testing.B) {
	sch := config.VSB(4, true, true, true, config.DefaultBusMHz).Scheme
	p := core.NewPlaneLogic(sch, 16)
	other := core.SubState{Active: true, Row: 0x1234}
	var sink core.Decision
	for i := 0; i < b.N; i++ {
		sink = p.Decide(uint32(i)&0xFFFF, i&1, core.SubState{}, other)
	}
	_ = sink
}

func BenchmarkCacheAccess(b *testing.B) {
	h := cache.MustNew(cache.Config{
		Cores: 4, L1Bytes: 32 << 10, L1Ways: 8,
		LLCBytes: 4 << 20, LLCWays: 16, LineBytes: 64,
	})
	for i := 0; i < b.N; i++ {
		h.Access(i&3, uint64(i*37)&0xFFFFF, i&7 == 0)
	}
}

func BenchmarkWorkloadGen(b *testing.B) {
	p, _ := workload.ByName("mcf")
	g := workload.New(p, 1)
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

// BenchmarkSimThroughput reports simulated instructions per second and
// allocations of the full stack across a system matrix (stock DDR4 vs
// the full ERUCA configuration) in both run-loop modes, so the win from
// event-driven cycle skipping is measured directly:
//
//	go test -bench SimThroughput -benchtime 3x
//
// Alongside the throughput numbers it reports the deterministic
// mechanism counters of the measured run (plane-conflict precharges,
// EWLR hits, RAP redirects, DDB bus cycles saved). Like buscycles,
// these are simulation *results*, not speeds: `make bench-compare`
// (scripts/bench_delta.awk) fails on ANY drift in them regardless of
// the throughput tolerance, pinning mechanism behavior PR over PR.
func BenchmarkSimThroughput(b *testing.B) {
	const simInstrs = 50_000
	benches := []string{"mcf", "lbm", "omnetpp", "gemsFDTD"}
	systems := []struct {
		name string
		sys  func() *config.System
	}{
		{"ddr4", func() *config.System { return config.Baseline(config.DefaultBusMHz) }},
		{"vsb-ewlr-rap-ddb", func() *config.System { return config.VSB(4, true, true, true, config.DefaultBusMHz) }},
	}
	modes := []struct {
		name string
		noFF bool
	}{
		{"fastforward", false},
		{"percycle", true},
	}
	for _, s := range systems {
		for _, m := range modes {
			b.Run(s.name+"/"+m.name, func(b *testing.B) {
				b.ReportAllocs()
				var cycles float64
				var mech [4]float64
				for i := 0; i < b.N; i++ {
					res, err := sim.Run(sim.Options{
						Sys: s.sys(), Benches: benches,
						Instrs: simInstrs, Frag: benchFrag, Seed: 42,
						NoFastForward: m.noFF,
					})
					if err != nil {
						b.Fatal(err)
					}
					cycles = float64(res.BusCycles)
					d := &res.DRAM
					mech = [4]float64{
						float64(d.PlaneConfPre), float64(d.ActsEWLRHit),
						float64(d.RAPRedirects), float64(d.DDBSavedCK),
					}
				}
				b.ReportMetric(cycles, "buscycles")
				b.ReportMetric(mech[0], "planeconf")
				b.ReportMetric(mech[1], "ewlrhits")
				b.ReportMetric(mech[2], "rapredir")
				b.ReportMetric(mech[3], "ddbsavedck")
				b.ReportMetric(float64(b.N)*float64(len(benches))*simInstrs/b.Elapsed().Seconds(), "instrs/s")
			})
		}
	}
}
